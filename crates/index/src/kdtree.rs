//! A bulk-built kd-tree over a fixed point set.
//!
//! Used in three roles in the reproduction:
//!
//! 1. backing index for the KDD'96 baseline's region queries;
//! 2. nearest-neighbor oracle for the Gunawan-style edge computation in 2D
//!    (standing in for the per-cell Voronoi diagrams of \[11\]);
//! 3. practical bichromatic-closest-pair routine between ε-neighbor core cells in
//!    the paper's exact algorithm (standing in for Agarwal et al.'s theoretical
//!    BCP — see DESIGN.md).
//!
//! After the build the tree re-stores its points as structure-of-arrays lanes
//! in build order (one contiguous `f64` lane per dimension), so leaf scans run
//! the blocked distance kernels of [`dbscan_geom::kernels`] over unit-stride
//! data; every node keeps its exact bounding box for tight pruning. The
//! kernels accumulate dimensions in the same order as [`Point::dist_sq`], so
//! every distance a leaf reports is bit-identical to the scalar scan it
//! replaced.

use crate::traits::RangeIndex;
use dbscan_geom::kernels::{self, SoaBlock, BLOCK};
use dbscan_geom::{Aabb, Point};

/// Number of points below which a subtree becomes a leaf.
const LEAF_SIZE: usize = 8;

struct Node<const D: usize> {
    bbox: Aabb<D>,
    start: u32,
    end: u32,
    /// `Some((left, right))` for internal nodes.
    children: Option<(u32, u32)>,
}

/// A static kd-tree with exact bounding boxes, median splits on the widest axis,
/// and leaves of at most `LEAF_SIZE` (8) points.
///
/// ```
/// use dbscan_index::{KdTree, RangeIndex};
/// use dbscan_geom::Point;
///
/// let pts = vec![Point([0.0, 0.0]), Point([3.0, 4.0]), Point([10.0, 0.0])];
/// let tree = KdTree::build(&pts);
/// let mut hits = Vec::new();
/// tree.range_query(&Point([0.0, 0.0]), 5.0, &mut hits);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![0, 1]); // closed ball: distance exactly 5 included
/// assert_eq!(tree.k_nearest(&Point([2.9, 4.0]), 1)[0].0, 1);
/// ```
pub struct KdTree<const D: usize> {
    /// Dataset ids in build (partition) order; leaf `[start, end)` ranges
    /// index into this.
    ids: Vec<u32>,
    /// Global SoA lanes in the same order: lane `d` is `lanes[d*n..(d+1)*n]`.
    lanes: Vec<f64>,
    nodes: Vec<Node<D>>,
    root: Option<u32>,
}

impl<const D: usize> KdTree<D> {
    /// Builds a tree over `pts`, reporting indices `0..pts.len()`.
    pub fn build(pts: &[Point<D>]) -> Self {
        Self::build_entries(
            pts.iter()
                .enumerate()
                .map(|(i, p)| (*p, i as u32))
                .collect(),
        )
    }

    /// Builds a tree over an arbitrary `(point, id)` list — used for indexing the
    /// core points of a single grid cell while reporting dataset-level ids.
    pub fn build_entries(mut entries: Vec<(Point<D>, u32)>) -> Self {
        let mut nodes = Vec::with_capacity(2 * (entries.len() / LEAF_SIZE + 1));
        let n = entries.len();
        let root = if n == 0 {
            None
        } else {
            Some(build_rec(&mut entries, 0, n, &mut nodes))
        };
        // Scatter the partitioned entries into SoA lanes; the AoS copy is
        // dropped — every query path reads the lanes.
        let mut ids = Vec::with_capacity(n);
        let mut lanes = vec![0.0f64; n * D];
        for (i, (p, id)) in entries.iter().enumerate() {
            ids.push(*id);
            for d in 0..D {
                lanes[d * n + i] = p[d];
            }
        }
        KdTree {
            ids,
            lanes,
            nodes,
            root,
        }
    }

    /// SoA view of the contiguous slot range `[start, start+len)` (a leaf or a
    /// chunk of one).
    fn slots(&self, start: usize, len: usize) -> SoaBlock<'_, D> {
        let n = self.ids.len();
        SoaBlock::from_lanes(std::array::from_fn(|d| {
            &self.lanes[d * n + start..d * n + start + len]
        }))
    }

    /// Bounding box of all indexed points (`None` if empty).
    pub fn bbox(&self) -> Option<Aabb<D>> {
        self.root.map(|r| self.nodes[r as usize].bbox)
    }

    /// Calls `f(id, dist_sq)` for every indexed point within the closed ball
    /// `B(q, r)`. Returning `false` from `f` stops the traversal early.
    pub fn for_each_within(&self, q: &Point<D>, r: f64, mut f: impl FnMut(u32, f64) -> bool) {
        if let Some(root) = self.root {
            self.visit(root, q, r * r, &mut f);
        }
    }

    /// Leaf scan shared by the visit recursions: blocked distance kernel over
    /// the SoA slots, then per-hit callbacks in slot order (so callback order
    /// and early-exit points match the old per-point scan exactly).
    #[inline]
    fn visit_leaf(
        &self,
        start: usize,
        end: usize,
        q: &Point<D>,
        r_sq: f64,
        f: &mut impl FnMut(u32, f64) -> bool,
    ) -> bool {
        let mut buf = [0.0f64; BLOCK];
        let mut s = start;
        while s < end {
            let len = BLOCK.min(end - s);
            kernels::dist_sq_one_to_block(q, &self.slots(s, len), &mut buf[..len]);
            for (j, &d) in buf[..len].iter().enumerate() {
                if d <= r_sq && !f(self.ids[s + j], d) {
                    return false;
                }
            }
            s += len;
        }
        true
    }

    fn visit(
        &self,
        node: u32,
        q: &Point<D>,
        r_sq: f64,
        f: &mut impl FnMut(u32, f64) -> bool,
    ) -> bool {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > r_sq {
            return true;
        }
        match n.children {
            None => self.visit_leaf(n.start as usize, n.end as usize, q, r_sq, f),
            Some((l, r)) => self.visit(l, q, r_sq, f) && self.visit(r, q, r_sq, f),
        }
    }

    /// Counted twin of [`Self::for_each_within`]: adds to `nodes_visited` every
    /// tree node touched, including nodes rejected by the bounding-box test.
    /// Kept separate from the uncounted recursion so the hot path never carries
    /// the extra `&mut` increment.
    pub fn for_each_within_counted(
        &self,
        q: &Point<D>,
        r: f64,
        nodes_visited: &mut u64,
        mut f: impl FnMut(u32, f64) -> bool,
    ) {
        if let Some(root) = self.root {
            self.visit_counted(root, q, r * r, nodes_visited, &mut f);
        }
    }

    fn visit_counted(
        &self,
        node: u32,
        q: &Point<D>,
        r_sq: f64,
        nodes_visited: &mut u64,
        f: &mut impl FnMut(u32, f64) -> bool,
    ) -> bool {
        *nodes_visited += 1;
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > r_sq {
            return true;
        }
        match n.children {
            None => self.visit_leaf(n.start as usize, n.end as usize, q, r_sq, f),
            Some((l, r)) => {
                self.visit_counted(l, q, r_sq, nodes_visited, f)
                    && self.visit_counted(r, q, r_sq, nodes_visited, f)
            }
        }
    }

    /// The `k` nearest indexed points to `q`, as `(id, dist_sq)` sorted by
    /// ascending distance (ties broken arbitrarily). Returns fewer than `k`
    /// entries when the tree is smaller than `k`.
    pub fn k_nearest(&self, q: &Point<D>, k: usize) -> Vec<(u32, f64)> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of the best k candidates, keyed by distance.
        let mut heap: std::collections::BinaryHeap<HeapEntry> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        self.knn(root, q, k, &mut heap);
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|e| (e.id, e.dist_sq)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        out
    }

    fn knn(
        &self,
        node: u32,
        q: &Point<D>,
        k: usize,
        heap: &mut std::collections::BinaryHeap<HeapEntry>,
    ) {
        let n = &self.nodes[node as usize];
        if heap.len() == k && n.bbox.min_dist_sq(q) > heap.peek().unwrap().dist_sq {
            return;
        }
        match n.children {
            None => {
                let (start, end) = (n.start as usize, n.end as usize);
                let mut buf = [0.0f64; BLOCK];
                let mut s = start;
                while s < end {
                    let len = BLOCK.min(end - s);
                    kernels::dist_sq_one_to_block(q, &self.slots(s, len), &mut buf[..len]);
                    for (j, &d) in buf[..len].iter().enumerate() {
                        if heap.len() < k {
                            heap.push(HeapEntry {
                                dist_sq: d,
                                id: self.ids[s + j],
                            });
                        } else if d < heap.peek().unwrap().dist_sq {
                            heap.pop();
                            heap.push(HeapEntry {
                                dist_sq: d,
                                id: self.ids[s + j],
                            });
                        }
                    }
                    s += len;
                }
            }
            Some((l, r)) => {
                let dl = self.nodes[l as usize].bbox.min_dist_sq(q);
                let dr = self.nodes[r as usize].bbox.min_dist_sq(q);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                self.knn(first, q, k, heap);
                self.knn(second, q, k, heap);
            }
        }
    }

    /// Nearest indexed point to `q` within radius `r`, as `(id, dist_sq)`.
    pub fn nearest_within_impl(&self, q: &Point<D>, r: f64) -> Option<(u32, f64)> {
        let root = self.root?;
        let mut best: Option<(u32, f64)> = None;
        let mut bound = r * r;
        self.nn(root, q, &mut bound, &mut best);
        best
    }

    /// Counted twin of [`Self::nearest_within_impl`]: adds to `nodes_visited`
    /// every tree node touched during the search (pruned nodes included).
    pub fn nearest_within_counted(
        &self,
        q: &Point<D>,
        r: f64,
        nodes_visited: &mut u64,
    ) -> Option<(u32, f64)> {
        let root = self.root?;
        let mut best: Option<(u32, f64)> = None;
        let mut bound = r * r;
        self.nn_counted(root, q, &mut bound, &mut best, nodes_visited);
        best
    }

    /// Leaf scan shared by the nearest-neighbor recursions: slot order and
    /// the strict `d < best` update rule match the old per-point scan, so the
    /// same candidate wins ties.
    #[inline]
    fn nn_leaf(
        &self,
        start: usize,
        end: usize,
        q: &Point<D>,
        bound: &mut f64,
        best: &mut Option<(u32, f64)>,
    ) {
        let mut buf = [0.0f64; BLOCK];
        let mut s = start;
        while s < end {
            let len = BLOCK.min(end - s);
            kernels::dist_sq_one_to_block(q, &self.slots(s, len), &mut buf[..len]);
            for (j, &d) in buf[..len].iter().enumerate() {
                if d <= *bound && best.is_none_or(|(_, bd)| d < bd) {
                    *best = Some((self.ids[s + j], d));
                    *bound = d;
                }
            }
            s += len;
        }
    }

    fn nn_counted(
        &self,
        node: u32,
        q: &Point<D>,
        bound: &mut f64,
        best: &mut Option<(u32, f64)>,
        nodes_visited: &mut u64,
    ) {
        *nodes_visited += 1;
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > *bound {
            return;
        }
        match n.children {
            None => self.nn_leaf(n.start as usize, n.end as usize, q, bound, best),
            Some((l, r)) => {
                let dl = self.nodes[l as usize].bbox.min_dist_sq(q);
                let dr = self.nodes[r as usize].bbox.min_dist_sq(q);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                self.nn_counted(first, q, bound, best, nodes_visited);
                self.nn_counted(second, q, bound, best, nodes_visited);
            }
        }
    }

    fn nn(&self, node: u32, q: &Point<D>, bound: &mut f64, best: &mut Option<(u32, f64)>) {
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > *bound {
            return;
        }
        match n.children {
            None => self.nn_leaf(n.start as usize, n.end as usize, q, bound, best),
            Some((l, r)) => {
                // Visit the child nearer to q first so the bound shrinks quickly.
                let dl = self.nodes[l as usize].bbox.min_dist_sq(q);
                let dr = self.nodes[r as usize].bbox.min_dist_sq(q);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                self.nn(first, q, bound, best);
                self.nn(second, q, bound, best);
            }
        }
    }

    /// Recursive capped counting: leaf chunks go through the branchless block
    /// kernel, the cap is consulted only between blocks/subtrees.
    fn count_rec(&self, node: u32, q: &Point<D>, r_sq: f64, cap: usize, count: &mut usize) {
        if *count >= cap {
            return;
        }
        let n = &self.nodes[node as usize];
        if n.bbox.min_dist_sq(q) > r_sq {
            return;
        }
        match n.children {
            None => {
                let (start, end) = (n.start as usize, n.end as usize);
                let mut s = start;
                while s < end && *count < cap {
                    let len = BLOCK.min(end - s);
                    *count += kernels::count_within_block(q, &self.slots(s, len), r_sq);
                    s += len;
                }
            }
            Some((l, r)) => {
                self.count_rec(l, q, r_sq, cap, count);
                self.count_rec(r, q, r_sq, cap, count);
            }
        }
    }
}

/// Candidate in the k-NN max-heap, ordered by distance.
struct HeapEntry {
    dist_sq: f64,
    id: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Distances are finite (validated inputs), so total_cmp is safe and
        // gives the max-heap the ordering we need.
        self.dist_sq.total_cmp(&other.dist_sq)
    }
}

fn build_rec<const D: usize>(
    entries: &mut [(Point<D>, u32)],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node<D>>,
) -> u32 {
    let slice = &entries[start..end];
    let mut bbox = Aabb::point(slice[0].0);
    for (p, _) in &slice[1..] {
        bbox.extend(p);
    }
    let id = nodes.len() as u32;
    nodes.push(Node {
        bbox,
        start: start as u32,
        end: end as u32,
        children: None,
    });
    if end - start > LEAF_SIZE {
        // Split on the widest axis at the median. If the box is degenerate
        // (all points identical) leave it as an oversized leaf.
        let axis = (0..D)
            .max_by(|&a, &b| bbox.side(a).partial_cmp(&bbox.side(b)).unwrap())
            .unwrap();
        if bbox.side(axis) > 0.0 {
            let mid = (start + end) / 2;
            entries[start..end].select_nth_unstable_by(mid - start, |a, b| {
                a.0[axis].partial_cmp(&b.0[axis]).unwrap()
            });
            let left = build_rec(entries, start, mid, nodes);
            let right = build_rec(entries, mid, end, nodes);
            nodes[id as usize].children = Some((left, right));
        }
    }
    id
}

impl<const D: usize> RangeIndex<D> for KdTree<D> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn range_query(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>) {
        self.for_each_within(q, r, |id, _| {
            out.push(id);
            true
        });
    }

    fn count_within(&self, q: &Point<D>, r: f64, cap: usize) -> usize {
        if cap == 0 {
            return 0;
        }
        let Some(root) = self.root else {
            return 0;
        };
        let mut count = 0;
        self.count_rec(root, q, r * r, cap, &mut count);
        count.min(cap)
    }

    fn nearest_within(&self, q: &Point<D>, r: f64) -> Option<(u32, f64)> {
        self.nearest_within_impl(q, r)
    }

    fn range_query_counted(&self, q: &Point<D>, r: f64, out: &mut Vec<u32>, work: &mut u64) {
        self.for_each_within_counted(q, r, work, |id, _| {
            out.push(id);
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbscan_geom::point::p2;

    fn grid_points(n_side: usize) -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for x in 0..n_side {
            for y in 0..n_side {
                pts.push(p2(x as f64, y as f64));
            }
        }
        pts
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::<2>::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.bbox().is_none());
        assert!(tree.nearest_within(&p2(0.0, 0.0), 1.0).is_none());
        assert_eq!(tree.count_within(&p2(0.0, 0.0), 1.0, 5), 0);
    }

    #[test]
    fn single_point() {
        let tree = KdTree::build(&[p2(3.0, 4.0)]);
        assert_eq!(tree.nearest_within(&p2(0.0, 0.0), 5.0), Some((0, 25.0)));
        assert!(tree.nearest_within(&p2(0.0, 0.0), 4.9).is_none());
    }

    #[test]
    fn all_identical_points_make_degenerate_leaf() {
        let pts: Vec<Point<2>> = (0..100).map(|_| p2(1.0, 1.0)).collect();
        let tree = KdTree::build(&pts);
        assert_eq!(tree.count_within(&p2(1.0, 1.0), 0.0, usize::MAX), 100);
        let mut out = Vec::new();
        tree.range_query(&p2(1.0, 1.0), 0.5, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let pts = grid_points(20);
        let tree = KdTree::build(&pts);
        let lin = LinearScan::new(&pts);
        for q in [p2(5.3, 7.1), p2(0.0, 0.0), p2(19.0, 19.0), p2(-3.0, 10.0)] {
            for r in [0.5, 1.0, 2.5, 7.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                tree.range_query(&q, r, &mut a);
                lin.range_query(&q, r, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "q={q:?} r={r}");
            }
        }
    }

    #[test]
    fn count_within_matches_linear_scan() {
        let pts = grid_points(20);
        let tree = KdTree::build(&pts);
        let lin = LinearScan::new(&pts);
        for q in [p2(5.3, 7.1), p2(0.0, 0.0), p2(-3.0, 10.0)] {
            for r in [0.5, 1.0, 2.5, 7.0] {
                for cap in [1usize, 5, 100, usize::MAX] {
                    assert_eq!(
                        tree.count_within(&q, r, cap),
                        lin.count_within(&q, r, cap),
                        "q={q:?} r={r} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let pts = grid_points(15);
        let tree = KdTree::build(&pts);
        let lin = LinearScan::new(&pts);
        for q in [p2(3.7, 8.2), p2(14.9, 0.1), p2(-1.0, -1.0)] {
            let a = tree.nearest_within(&q, 100.0).unwrap();
            let b = lin.nearest_within(&q, 100.0).unwrap();
            assert_eq!(a.1, b.1, "distances must agree for q={q:?}");
        }
    }

    #[test]
    fn count_within_early_stop() {
        let pts = grid_points(30);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.count_within(&p2(15.0, 15.0), 100.0, 7), 7);
    }

    #[test]
    fn build_entries_reports_custom_ids() {
        let entries = vec![(p2(0.0, 0.0), 42), (p2(1.0, 0.0), 7)];
        let tree = KdTree::build_entries(entries);
        let (id, _) = tree.nearest_within(&p2(0.9, 0.0), 2.0).unwrap();
        assert_eq!(id, 7);
    }

    #[test]
    fn k_nearest_matches_sorted_linear_scan() {
        let pts = grid_points(12);
        let tree = KdTree::build(&pts);
        for q in [p2(4.3, 7.8), p2(-1.0, 5.0), p2(11.0, 11.0)] {
            for k in [1usize, 3, 10, 200] {
                let got = tree.k_nearest(&q, k);
                let mut want: Vec<f64> = pts.iter().map(|p| p.dist_sq(&q)).collect();
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                want.truncate(k);
                let got_d: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
                assert_eq!(got_d, want, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn k_nearest_edge_cases() {
        let tree = KdTree::<2>::build(&[]);
        assert!(tree.k_nearest(&p2(0.0, 0.0), 3).is_empty());
        let tree = KdTree::build(&[p2(1.0, 1.0)]);
        assert!(tree.k_nearest(&p2(0.0, 0.0), 0).is_empty());
        assert_eq!(tree.k_nearest(&p2(0.0, 0.0), 5).len(), 1);
    }

    #[test]
    fn counted_twins_agree_with_uncounted() {
        let pts = grid_points(20);
        let tree = KdTree::build(&pts);
        for q in [p2(5.3, 7.1), p2(0.0, 0.0), p2(-3.0, 10.0)] {
            for r in [0.5, 2.5, 7.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let mut work = 0u64;
                tree.range_query(&q, r, &mut a);
                tree.range_query_counted(&q, r, &mut b, &mut work);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "q={q:?} r={r}");
                assert!(work >= 1, "root is always visited");

                let mut nn_work = 0u64;
                assert_eq!(
                    tree.nearest_within_impl(&q, r),
                    tree.nearest_within_counted(&q, r, &mut nn_work),
                    "q={q:?} r={r}"
                );
                assert!(nn_work >= 1);
            }
        }
    }

    #[test]
    fn counted_work_accumulates_across_queries() {
        let pts = grid_points(10);
        let tree = KdTree::build(&pts);
        let mut work = 0u64;
        let mut out = Vec::new();
        tree.range_query_counted(&p2(5.0, 5.0), 1.0, &mut out, &mut work);
        let first = work;
        tree.range_query_counted(&p2(5.0, 5.0), 1.0, &mut out, &mut work);
        assert_eq!(work, 2 * first, "counter adds, it does not reset");
    }

    #[test]
    fn for_each_within_early_exit() {
        let pts = grid_points(10);
        let tree = KdTree::build(&pts);
        let mut seen = 0;
        tree.for_each_within(&p2(5.0, 5.0), 50.0, |_, _| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }
}
