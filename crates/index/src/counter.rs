//! The hierarchical-grid **approximate range counter** of Lemma 5.
//!
//! For fixed `ε` and `ρ`, the structure stores the point multiset in a
//! quadtree-like hierarchy of grids: level 0 has side `ε/√d`, every level halves
//! the side, and the hierarchy stops once the side is at most `ερ/√d` — i.e.
//! `h = max(1, 1 + ⌈log₂(1/ρ)⌉)` levels. Only non-empty cells are materialized.
//!
//! A query with center `q` returns an integer `ans` with
//!
//! ```text
//! |B(q, ε) ∩ P|  ≤  ans  ≤  |B(q, ε(1+ρ)) ∩ P|
//! ```
//!
//! by the paper's three-way cell classification: cells disjoint from `B(q, ε)`
//! are skipped, cells fully inside `B(q, ε(1+ρ))` contribute their count, and
//! leaf cells intersecting `B(q, ε)` contribute their count (sound because a
//! leaf's diameter is at most `ερ`). Everything else recurses.

use crate::error::{check_budget, BuildError};
use crate::kdtree::KdTree;
use dbscan_geom::grid::{base_side, hierarchy_levels};
use dbscan_geom::{CellCoord, CellError, Point};
use std::mem::size_of;

struct CounterNode<const D: usize> {
    coord: CellCoord<D>,
    count: u32,
    /// Children occupy `child_start..child_end` of the next level's node list.
    child_start: u32,
    child_end: u32,
}

/// Approximate range counter for fixed `(ε, ρ)` (Lemma 5 of the paper):
/// O(n) space, O(n) expected build, O(1) expected query for constant `ρ` and `d`.
///
/// ```
/// use dbscan_index::ApproxRangeCounter;
/// use dbscan_geom::Point;
///
/// let pts = vec![Point([0.0, 0.0]), Point([0.5, 0.0]), Point([9.0, 9.0])];
/// let counter = ApproxRangeCounter::build(&pts, 1.0, 0.01);
/// let ans = counter.query(&Point([0.1, 0.0]));
/// // Guaranteed: |B(q, 1.0)| = 2  <=  ans  <=  |B(q, 1.01)| = 2.
/// assert_eq!(ans, 2);
/// assert!(!counter.query_positive(&Point([20.0, 20.0])));
/// ```
pub struct ApproxRangeCounter<const D: usize> {
    eps: f64,
    rho: f64,
    /// Side length per level: `sides[i] = ε/(2^i √d)`.
    sides: Vec<f64>,
    levels: Vec<Vec<CounterNode<D>>>,
    /// Accelerates finding the level-0 cells near `q` when the structure spans
    /// many level-0 cells (the per-grid-cell counters used inside the
    /// ρ-approximate algorithm have only a handful, and skip this).
    root_tree: Option<KdTree<D>>,
}

/// Build a kd-tree over level-0 centers once there are this many roots.
const ROOT_TREE_THRESHOLD: usize = 32;

impl<const D: usize> ApproxRangeCounter<D> {
    /// Builds the counter over `points`. `eps` must be positive and `rho` in
    /// `(0, +∞)` (values ≥ 1 degenerate to a single level). O(n·h) time.
    ///
    /// Panics on invalid parameters; callers with untrusted input should use
    /// [`ApproxRangeCounter::try_build`].
    pub fn build(points: &[Point<D>], eps: f64, rho: f64) -> Self {
        assert!(eps > 0.0, "eps must be positive");
        assert!(rho > 1e-9, "rho must be positive (and not absurdly small)");
        Self::build_inner(points, eps, rho)
    }

    /// Fallible twin of [`ApproxRangeCounter::build`]: rejects, with a typed
    /// [`BuildError`], non-positive/non-finite `eps` and `rho` (including
    /// `rho ≤ 1e-9`, where the Lemma 5 hierarchy degenerates), coordinates
    /// whose cell index at the *deepest* (smallest-side) level would overflow
    /// `i64` — the unchecked build saturates there and silently merges distant
    /// points into one leaf, breaking the sandwich guarantee — and, when
    /// `max_bytes` is given, builds whose estimated `h`-level footprint (see
    /// [`estimated_build_bytes`]) exceeds the budget.
    pub fn try_build(
        points: &[Point<D>],
        eps: f64,
        rho: f64,
        max_bytes: Option<u64>,
    ) -> Result<Self, BuildError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(BuildError::Cell(CellError::BadSide {
                side: base_side::<D>(eps),
            }));
        }
        if !(rho.is_finite() && rho > 1e-9) {
            return Err(BuildError::Param {
                what: "rho",
                value: rho,
            });
        }
        let h = hierarchy_levels(rho);
        check_budget(
            "approximate range counter",
            estimated_build_bytes::<D>(points.len(), rho),
            max_bytes,
        )?;
        // Validate at the deepest level's side: it is the smallest, so its cell
        // coordinates are the largest in magnitude; if they fit, every
        // shallower level fits too.
        let leaf_side = base_side::<D>(eps) / (1u64 << (h - 1)) as f64;
        for p in points {
            CellCoord::try_of(p, leaf_side)?;
        }
        Ok(Self::build_inner(points, eps, rho))
    }

    fn build_inner(points: &[Point<D>], eps: f64, rho: f64) -> Self {
        let h = hierarchy_levels(rho);
        let sides: Vec<f64> = (0..h)
            .map(|i| base_side::<D>(eps) / (1u64 << i) as f64)
            .collect();

        let mut levels: Vec<Vec<CounterNode<D>>> = (0..h).map(|_| Vec::new()).collect();
        if !points.is_empty() {
            let mut pts = points.to_vec();
            let mut scratch = vec![Point::<D>::default(); pts.len()];
            // Group points by their level-0 cell, then recurse per group.
            pts.sort_unstable_by(|a, b| {
                CellCoord::of(a, sides[0]).cmp(&CellCoord::of(b, sides[0]))
            });
            let mut start = 0;
            while start < pts.len() {
                let coord = CellCoord::of(&pts[start], sides[0]);
                let mut end = start + 1;
                while end < pts.len() && CellCoord::of(&pts[end], sides[0]) == coord {
                    end += 1;
                }
                build_rec(
                    &mut pts[start..end],
                    &mut scratch[start..end],
                    0,
                    coord,
                    &sides,
                    &mut levels,
                );
                start = end;
            }
        }

        let root_tree = if levels[0].len() >= ROOT_TREE_THRESHOLD {
            let centers: Vec<Point<D>> =
                levels[0].iter().map(|n| n.coord.center(sides[0])).collect();
            Some(KdTree::build(&centers))
        } else {
            None
        };

        ApproxRangeCounter {
            eps,
            rho,
            sides,
            levels,
            root_tree,
        }
    }

    /// The `ε` the structure was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The `ρ` the structure was built for.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Number of levels `h`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of indexed points.
    pub fn num_points(&self) -> usize {
        self.levels[0].iter().map(|n| n.count as usize).sum()
    }

    /// Answers the approximate range-count query at `q`: the result is between
    /// `|B(q, ε) ∩ P|` and `|B(q, ε(1+ρ)) ∩ P|`.
    pub fn query(&self, q: &Point<D>) -> usize {
        let mut ans = 0usize;
        self.for_candidate_roots(q, |this, root| {
            this.visit(0, root, q, &mut ans, usize::MAX);
            true
        });
        ans
    }

    /// Whether the approximate count at `q` is non-zero, with early exit.
    /// `true` guarantees some point lies in `B(q, ε(1+ρ))`; `false` guarantees
    /// `B(q, ε)` is empty. This is the edge test of the ρ-approximate algorithm.
    pub fn query_positive(&self, q: &Point<D>) -> bool {
        let mut ans = 0usize;
        self.for_candidate_roots(q, |this, root| {
            this.visit(0, root, q, &mut ans, 1);
            ans == 0
        });
        ans > 0
    }

    /// Counted twin of [`Self::query_positive`]: adds to `cells_visited` every
    /// hierarchy cell touched (cells rejected as disjoint included — the
    /// classification test is the work the paper's Lemma 5 bounds). Separate
    /// from the uncounted recursion so the hot path stays unchanged.
    pub fn query_positive_counted(&self, q: &Point<D>, cells_visited: &mut u64) -> bool {
        let mut ans = 0usize;
        let mut visited = 0u64;
        self.for_candidate_roots(q, |this, root| {
            this.visit_counted(0, root, q, &mut ans, 1, &mut visited);
            ans == 0
        });
        *cells_visited += visited;
        ans > 0
    }

    /// Invokes `f` on every level-0 node that could intersect `B(q, ε(1+ρ))`,
    /// until `f` returns `false`.
    fn for_candidate_roots(&self, q: &Point<D>, mut f: impl FnMut(&Self, usize) -> bool) {
        match &self.root_tree {
            Some(tree) => {
                // A level-0 cell intersecting the query ball has its center
                // within radius eps(1+rho) + half the cell diagonal.
                let reach = self.eps * (1.0 + self.rho) + 0.5 * self.eps + 1e-9 * self.eps;
                tree.for_each_within(q, reach, |i, _| f(self, i as usize));
            }
            None => {
                for i in 0..self.levels[0].len() {
                    if !f(self, i) {
                        break;
                    }
                }
            }
        }
    }

    /// Core recursion; stops adding once `ans >= stop_at`.
    fn visit(&self, lvl: usize, node_idx: usize, q: &Point<D>, ans: &mut usize, stop_at: usize) {
        if *ans >= stop_at {
            return;
        }
        let node = &self.levels[lvl][node_idx];
        let bbox = node.coord.aabb(self.sides[lvl]);
        if !bbox.intersects_ball(q, self.eps) {
            // Disjoint from B(q, ε): contributes nothing (even if it intersects
            // the outer ball — the paper's SW(5) case in Figure 7).
            return;
        }
        let is_leaf = lvl + 1 == self.levels.len();
        if is_leaf || bbox.inside_ball(q, self.eps * (1.0 + self.rho)) {
            *ans += node.count as usize;
            return;
        }
        for child in node.child_start..node.child_end {
            self.visit(lvl + 1, child as usize, q, ans, stop_at);
        }
    }

    fn visit_counted(
        &self,
        lvl: usize,
        node_idx: usize,
        q: &Point<D>,
        ans: &mut usize,
        stop_at: usize,
        cells_visited: &mut u64,
    ) {
        if *ans >= stop_at {
            return;
        }
        *cells_visited += 1;
        let node = &self.levels[lvl][node_idx];
        let bbox = node.coord.aabb(self.sides[lvl]);
        if !bbox.intersects_ball(q, self.eps) {
            return;
        }
        let is_leaf = lvl + 1 == self.levels.len();
        if is_leaf || bbox.inside_ball(q, self.eps * (1.0 + self.rho)) {
            *ans += node.count as usize;
            return;
        }
        for child in node.child_start..node.child_end {
            self.visit_counted(lvl + 1, child as usize, q, ans, stop_at, cells_visited);
        }
    }
}

/// Conservative upper bound on the bytes an [`ApproxRangeCounter`] build over
/// `n` points needs: at most `n` non-empty nodes on each of the
/// `h = hierarchy_levels(rho)` levels, plus the two point buffers the
/// counting sort shuffles through. Exposed so callers that build *many*
/// counters (the per-cell counters of the ρ-approximate algorithm) can check
/// an aggregate budget up front without constructing anything.
pub fn estimated_build_bytes<const D: usize>(n: usize, rho: f64) -> u64 {
    let h = hierarchy_levels(rho) as u64;
    let node = size_of::<CounterNode<D>>() as u64;
    let point = size_of::<Point<D>>() as u64;
    (n as u64)
        .saturating_mul(h.saturating_mul(node).saturating_add(2 * point))
}

/// Recursively materializes the hierarchy for the points of one cell at `lvl`.
/// Children of a node are pushed consecutively into the next level's list (the
/// recursion is depth-first, and deeper calls only touch deeper levels), which is
/// what makes the `child_start..child_end` ranges valid.
fn build_rec<const D: usize>(
    pts: &mut [Point<D>],
    scratch: &mut [Point<D>],
    lvl: usize,
    coord: CellCoord<D>,
    sides: &[f64],
    levels: &mut [Vec<CounterNode<D>>],
) {
    let my_idx = levels[lvl].len();
    levels[lvl].push(CounterNode {
        coord,
        count: pts.len() as u32,
        child_start: 0,
        child_end: 0,
    });
    if lvl + 1 == sides.len() {
        return;
    }

    // Partition the slice into the 2^D children by parity of the child cell
    // coordinates (a counting sort through `scratch`).
    let nbuckets = 1usize << D;
    let child_side = sides[lvl + 1];
    let bucket_of = |p: &Point<D>| -> usize {
        let c = CellCoord::of(p, child_side);
        let mut b = 0usize;
        for i in 0..D {
            b = (b << 1) | (c.0[i] & 1) as usize;
        }
        b
    };
    let mut counts = vec![0u32; nbuckets];
    for p in pts.iter() {
        counts[bucket_of(p)] += 1;
    }
    let mut offsets = vec![0u32; nbuckets + 1];
    for b in 0..nbuckets {
        offsets[b + 1] = offsets[b] + counts[b];
    }
    let mut cursor = offsets.clone();
    for p in pts.iter() {
        let b = bucket_of(p);
        scratch[cursor[b] as usize] = *p;
        cursor[b] += 1;
    }
    pts.copy_from_slice(scratch);

    let child_start = levels[lvl + 1].len() as u32;
    for b in 0..nbuckets {
        let (s, e) = (offsets[b] as usize, offsets[b + 1] as usize);
        if s == e {
            continue;
        }
        let child_coord = CellCoord::of(&pts[s], child_side);
        debug_assert_eq!(child_coord.parent(), coord, "child must refine parent");
        build_rec(
            &mut pts[s..e],
            &mut scratch[s..e],
            lvl + 1,
            child_coord,
            sides,
            levels,
        );
    }
    let child_end = levels[lvl + 1].len() as u32;
    levels[lvl][my_idx].child_start = child_start;
    levels[lvl][my_idx].child_end = child_end;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn brute_count<const D: usize>(pts: &[Point<D>], q: &Point<D>, r: f64) -> usize {
        pts.iter().filter(|p| p.dist_sq(q) <= r * r).count()
    }

    fn lcg_points(n: usize, span: f64, seed: u64) -> Vec<Point<2>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * span
        };
        (0..n).map(|_| p2(next(), next())).collect()
    }

    #[test]
    fn empty_counter() {
        let c = ApproxRangeCounter::<2>::build(&[], 1.0, 0.01);
        assert_eq!(c.query(&p2(0.0, 0.0)), 0);
        assert!(!c.query_positive(&p2(0.0, 0.0)));
        assert_eq!(c.num_points(), 0);
    }

    #[test]
    fn counts_are_exact_when_far_from_boundary() {
        let pts = vec![p2(0.0, 0.0), p2(0.1, 0.0), p2(10.0, 10.0)];
        let c = ApproxRangeCounter::build(&pts, 1.0, 0.01);
        // Points well inside / outside both balls are counted exactly.
        assert_eq!(c.query(&p2(0.05, 0.0)), 2);
        assert_eq!(c.query(&p2(20.0, 20.0)), 0);
    }

    #[test]
    fn sandwich_guarantee_on_random_points() {
        let pts = lcg_points(500, 20.0, 0xDEADBEEF);
        for rho in [0.001, 0.01, 0.1, 0.5] {
            let eps = 1.5;
            let c = ApproxRangeCounter::build(&pts, eps, rho);
            for q in pts.iter().step_by(7) {
                let lo = brute_count(&pts, q, eps);
                let hi = brute_count(&pts, q, eps * (1.0 + rho));
                let ans = c.query(q);
                assert!(
                    lo <= ans && ans <= hi,
                    "rho={rho}: {lo} <= {ans} <= {hi} violated at {q:?}"
                );
                assert_eq!(c.query_positive(q), ans > 0);
            }
        }
    }

    #[test]
    fn level_count_matches_formula() {
        let pts = vec![p2(0.0, 0.0)];
        assert_eq!(ApproxRangeCounter::build(&pts, 1.0, 0.001).num_levels(), 11);
        assert_eq!(ApproxRangeCounter::build(&pts, 1.0, 0.5).num_levels(), 2);
        assert_eq!(ApproxRangeCounter::build(&pts, 1.0, 1.0).num_levels(), 1);
    }

    #[test]
    fn num_points_counts_multiset() {
        let pts = vec![p2(1.0, 1.0); 17];
        let c = ApproxRangeCounter::build(&pts, 2.0, 0.1);
        assert_eq!(c.num_points(), 17);
        assert_eq!(c.query(&p2(1.0, 1.0)), 17);
    }

    #[test]
    fn root_tree_path_agrees_with_scan_path() {
        // Enough spread-out points to trigger the kd-tree over level-0 cells.
        let pts = lcg_points(2000, 500.0, 42);
        let eps = 3.0;
        let rho = 0.05;
        let c = ApproxRangeCounter::build(&pts, eps, rho);
        for q in pts.iter().step_by(31) {
            let lo = brute_count(&pts, q, eps);
            let hi = brute_count(&pts, q, eps * (1.0 + rho));
            let ans = c.query(q);
            assert!(lo <= ans && ans <= hi, "{lo} <= {ans} <= {hi} at {q:?}");
        }
    }

    #[test]
    fn query_positive_early_exit_consistency() {
        let pts = lcg_points(300, 10.0, 7);
        let c = ApproxRangeCounter::build(&pts, 0.8, 0.01);
        for q in pts.iter().step_by(11) {
            assert_eq!(c.query_positive(q), c.query(q) > 0);
        }
    }

    #[test]
    fn try_build_rejects_bad_params() {
        let pts = vec![p2(0.0, 0.0)];
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ApproxRangeCounter::try_build(&pts, eps, 0.01, None),
                Err(BuildError::Cell(CellError::BadSide { .. }))
            ));
        }
        for rho in [0.0, -0.5, 1e-10, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ApproxRangeCounter::try_build(&pts, 1.0, rho, None),
                Err(BuildError::Param { what: "rho", .. })
            ));
        }
    }

    #[test]
    fn try_build_rejects_leaf_level_overflow() {
        // 1e17 fits the level-0 grid at eps = 1, but the hierarchy for
        // rho = 0.001 divides the side by 2^10, pushing the leaf coordinate
        // past the checked 2^61 bound.
        let pts = vec![p2(1e17, 0.0)];
        assert!(ApproxRangeCounter::try_build(&pts, 1.0, 0.5, None).is_ok());
        assert!(matches!(
            ApproxRangeCounter::try_build(&pts, 1.0, 0.001, None),
            Err(BuildError::Cell(CellError::Overflow { .. }))
        ));
    }

    #[test]
    fn try_build_respects_byte_budget() {
        let pts = lcg_points(200, 20.0, 3);
        assert!(matches!(
            ApproxRangeCounter::try_build(&pts, 1.0, 0.01, Some(100)),
            Err(BuildError::Budget {
                structure: "approximate range counter",
                ..
            })
        ));
        let c = ApproxRangeCounter::try_build(&pts, 1.0, 0.01, Some(1 << 24)).unwrap();
        assert_eq!(c.num_points(), 200);
    }

    #[test]
    fn counted_query_positive_agrees_and_counts() {
        let pts = lcg_points(300, 10.0, 7);
        let c = ApproxRangeCounter::build(&pts, 0.8, 0.01);
        let mut total = 0u64;
        for q in pts.iter().step_by(11) {
            let before = total;
            assert_eq!(c.query_positive_counted(q, &mut total), c.query_positive(q));
            assert!(total > before, "every query visits at least one cell");
        }
    }
}
