//! The experiment parameter grid (Table 1), resolved to a machine scale.
//!
//! The paper ran on datasets up to n = 10 million with a 12-hour timeout per
//! run. The reproduction targets a laptop, so the grid is expressed through a
//! [`Scale`]: the *shape* of every experiment (who is swept, against what, with
//! which defaults) is identical; only the magnitudes shrink. `--scale paper`
//! selects the original magnitudes for hardware that can afford them.

use std::time::Duration;

/// A resolved experiment scale.
#[derive(Clone, Debug)]
pub struct Scale {
    pub name: &'static str,
    /// The cardinality sweep of Figure 11.
    pub n_sweep: Vec<usize>,
    /// Default cardinality for Figures 10, 12, 13 (the paper's n = 2m).
    pub default_n: usize,
    /// Cardinality for the real-dataset stand-ins (the paper's 2.0–3.9m).
    pub real_n: usize,
    /// MinPts (100 in the paper; reduced at tiny scales where clusters hold
    /// too few points for 100 to be meaningful).
    pub min_pts: usize,
    /// Per-run wall-clock budget standing in for the paper's 12-hour cutoff:
    /// once an algorithm exceeds it, larger instances of the same sweep are
    /// skipped and reported as such.
    pub time_budget: Duration,
    /// Points for the 2D visualization dataset of Figures 8/9 (1000 in the
    /// paper at every scale — it is deliberately small).
    pub viz_n: usize,
}

impl Scale {
    /// Looks up a scale by name: `tiny`, `small`, `medium`, `large`, `paper`.
    pub fn by_name(name: &str) -> Option<Scale> {
        let s = match name {
            "tiny" => Scale {
                name: "tiny",
                n_sweep: vec![1_000, 2_000, 5_000, 10_000],
                default_n: 5_000,
                real_n: 5_000,
                min_pts: 10,
                time_budget: Duration::from_secs(10),
                viz_n: 1_000,
            },
            "small" => Scale {
                name: "small",
                n_sweep: vec![5_000, 10_000, 20_000, 50_000],
                default_n: 20_000,
                real_n: 20_000,
                min_pts: 20,
                time_budget: Duration::from_secs(30),
                viz_n: 1_000,
            },
            "medium" => Scale {
                name: "medium",
                n_sweep: vec![20_000, 50_000, 100_000, 200_000],
                default_n: 100_000,
                real_n: 100_000,
                min_pts: 100,
                time_budget: Duration::from_secs(60),
                viz_n: 1_000,
            },
            "large" => Scale {
                name: "large",
                n_sweep: vec![100_000, 500_000, 1_000_000, 2_000_000],
                default_n: 500_000,
                real_n: 500_000,
                min_pts: 100,
                time_budget: Duration::from_secs(600),
                viz_n: 1_000,
            },
            "paper" => Scale {
                name: "paper",
                n_sweep: vec![
                    100_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
                ],
                default_n: 2_000_000,
                real_n: 2_000_000,
                min_pts: 100,
                time_budget: Duration::from_secs(12 * 3600),
                viz_n: 1_000,
            },
            _ => return None,
        };
        Some(s)
    }

    /// The default scale for interactive runs.
    pub fn default_scale() -> Scale {
        Scale::by_name("small").unwrap()
    }
}

/// The paper's default radius (Table 1: ε from 5000 up to the collapsing
/// radius, with 5000 the default for the n and ρ sweeps).
pub const DEFAULT_EPS: f64 = 5000.0;

/// The paper's recommended (and default) approximation ratio.
pub const DEFAULT_RHO: f64 = 0.001;

/// Fixed RNG seed so every figure is reproducible run to run.
pub const DATASET_SEED: u64 = 0x5EED_5EED;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scales_resolve() {
        for name in ["tiny", "small", "medium", "large", "paper"] {
            let s = Scale::by_name(name).unwrap();
            assert_eq!(s.name, name);
            assert!(!s.n_sweep.is_empty());
            assert!(s.n_sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(s.default_n <= *s.n_sweep.last().unwrap());
            assert!(s.min_pts >= 2);
        }
        assert!(Scale::by_name("bogus").is_none());
    }

    #[test]
    fn paper_scale_matches_table1() {
        let s = Scale::by_name("paper").unwrap();
        assert_eq!(s.default_n, 2_000_000);
        assert_eq!(s.min_pts, 100);
        assert_eq!(s.n_sweep.last(), Some(&10_000_000));
        assert_eq!(DEFAULT_EPS, 5000.0);
        assert_eq!(DEFAULT_RHO, 0.001);
    }
}
