//! Shared harness for regenerating the paper's evaluation (Section 5).
//!
//! The `repro` binary (in `src/bin/repro.rs`) exposes one subcommand per table
//! and figure; this library holds the pieces it shares with the Criterion
//! benches: the resolved parameter grid of Table 1 ([`config`]), dataset
//! construction ([`datasets`]), wall-clock measurement with time budgets
//! ([`timing`]), and plain-text table rendering ([`table`]).

pub mod config;
pub mod datasets;
pub mod table;
pub mod timing;

pub use config::Scale;
pub use datasets::DatasetKind;
