//! `repro` — regenerates every table and figure of the paper's evaluation
//! (Section 5) at a configurable machine scale.
//!
//! ```text
//! repro [COMMAND] [--scale tiny|small|medium|large|paper] [--out DIR]
//!
//! COMMANDS
//!   table1    print the resolved parameter grid (Table 1)
//!   fig1      arbitrary-shape clusters: DBSCAN vs k-means (Figure 1)
//!   fig8      generate + dump the 2D seed-spreader visualization dataset
//!   fig9      exact vs ρ-approximate clusters on the 2D dataset (Figure 9)
//!   fig10     maximum legal ρ vs ε, all datasets (Figure 10)
//!   fig11     running time vs cardinality n (Figure 11)
//!   fig12     running time vs radius ε (Figure 12)
//!   fig13     running time vs approximation ratio ρ (Figure 13)
//!   phases    per-phase wall-time / counter breakdown of every algorithm
//!             (the dbscan-stats/v7 instrumentation; see EXPERIMENTS.md)
//!   scaling   thread-scaling sweep (1, 2, 4, ... workers) of the parallel
//!             exact + rho-approximate paths on seed-spreader data, with the
//!             scheduler/union-find counters (emits BENCH_scaling.json)
//!   trace     event-level trace of a parallel exact run on ss5d; writes
//!             Chrome trace-event JSON and folded flamegraph stacks
//!   bench     fixed small seed-spreader matrix (seq + parallel, exact +
//!             approx) -> top-level BENCH_core.json perf baseline
//!   labels    label fingerprints of the bench matrix (seq + parallel,
//!             exact + approx): one FNV-1a hash per cell, for bit-identity
//!             diffs across code changes (see scripts/verify.sh)
//!   sandwich  empirical check of Theorem 3 on random datasets
//!   all       everything above except trace/bench, in order
//! ```
//!
//! There are also three service-mode subcommands with their own flag sets:
//!
//! ```text
//! repro loadgen (--socket PATH | --connect HOST:PORT) [--jobs N]
//!               [--faulted N] [--past-deadline N] [--out DIR]
//!               [--metrics-out FILE] [--traced N]
//! repro monitor (--socket PATH | --connect HOST:PORT) [--interval-ms N]
//!               [--samples N] [--out DIR]
//! repro crashchaos [--bin PATH] [--jobs N] [--seed N]
//! ```
//!
//! `loadgen` drives a running `dbscan serve` daemon with N concurrent
//! clients (optionally seeding some with deterministic faults or unmeetable
//! deadlines), honours `overloaded` rejections through a seeded, jittered
//! exponential backoff that respects the advertised `retry_after_ms`
//! (retry counts appear in the summary table), cross-checks the daemon's
//! `dbscan-server-stats/v1` accounting — and its `metrics` exposition —
//! at quiescence, and writes a log2 latency histogram to
//! `DIR/loadgen_hist.json`. With `--metrics-out FILE` it additionally polls
//! the `metrics` verb during the burst and writes a
//! `dbscan-loadgen-metrics/v1` time-series of server-side state (queue
//! depth, shed/degraded counts). With `--traced N`, the first N healthy
//! jobs request an inline Chrome trace (`DIR/loadgen_trace.json` keeps the
//! first one). Exits 0 only if every job resolved as expected and all
//! accounting is consistent.
//!
//! `monitor` polls a live daemon's `timeseries` + `health` verbs, renders a
//! one-line-per-sample terminal dashboard, and writes the collected window
//! to `DIR/monitor.json` (`dbscan-monitor/v1`).
//!
//! `crashchaos` is the kill-9 recovery drill: it spawns its own journaled
//! daemon (`dbscan serve --journal`), drives a burst, SIGKILLs the daemon
//! at a seeded random point mid-burst, restarts it on the same journal, and
//! asserts the recovery invariant — no acked job is lost, no delivered job
//! is re-run, replayed results are bit-identical — then checks the journal
//! compacted below its trigger. Exits 0 only if every assertion holds.
//!
//! Absolute numbers depend on the machine; the *shapes* (who wins, by what
//! factor, where the curves cross) are what reproduce the paper. See
//! EXPERIMENTS.md for recorded outputs.

use dbscan_bench::config::{Scale, DATASET_SEED, DEFAULT_EPS, DEFAULT_RHO};
use dbscan_bench::datasets::{
    farm_points, household_points, pamap2_points, spreader_points, viz2d_points, DatasetKind,
};
use dbscan_bench::table::Table;
use dbscan_bench::timing::{time_once, BudgetTracker, Measurement};
use dbscan_core::algorithms::{
    cit08, cit08_instrumented, grid_exact, grid_exact_instrumented, grid_exact_with, gunawan_2d,
    gunawan_2d_instrumented, kdd96_rtree, kdd96_rtree_instrumented, rho_approx,
    rho_approx_instrumented, BcpStrategy, Cit08Config,
};
use dbscan_core::parallel::{
    grid_exact_par_instrumented, resolve_threads, rho_approx_par_instrumented,
};
use dbscan_core::{
    chrome_trace_json, folded_stacks, Clustering, Counter, DbscanParams, Phase, Stats, TracedStats,
};
use dbscan_datagen::io::{write_labeled_csv, write_points_csv};
use dbscan_eval::sandwich::{check_sandwich, SandwichOutcome};
use dbscan_eval::{collapsing_radius, max_legal_rho, same_clustering, PAPER_RHO_GRID};
use dbscan_geom::Point;
use std::path::{Path, PathBuf};

/// Runs `$body` with `$pts` bound to the points of `$kind` at cardinality `$n`
/// (dimension resolved at compile time per arm).
macro_rules! with_dataset_points {
    ($kind:expr, $n:expr, |$pts:ident| $body:expr) => {
        match $kind {
            DatasetKind::Ss3d => {
                let $pts = spreader_points::<3>($n);
                $body
            }
            DatasetKind::Ss5d => {
                let $pts = spreader_points::<5>($n);
                $body
            }
            DatasetKind::Ss7d => {
                let $pts = spreader_points::<7>($n);
                $body
            }
            DatasetKind::Pamap2 => {
                let $pts = pamap2_points($n);
                $body
            }
            DatasetKind::Farm => {
                let $pts = farm_points($n);
                $body
            }
            DatasetKind::Household => {
                let $pts = household_points($n);
                $body
            }
        }
    };
}

fn main() {
    // `loadgen` talks to a daemon instead of running algorithms in-process
    // and has its own flag grammar, so it dispatches before parse_args.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("loadgen") {
        raw.remove(0);
        std::process::exit(loadgen(raw));
    }
    if raw.first().map(String::as_str) == Some("monitor") {
        raw.remove(0);
        std::process::exit(monitor(raw));
    }
    if raw.first().map(String::as_str) == Some("crashchaos") {
        raw.remove(0);
        std::process::exit(crashchaos(raw));
    }
    let (command, scale, out, huge) = parse_args();
    std::fs::create_dir_all(&out).expect("cannot create output directory");
    println!(
        "# DBSCAN Revisited reproduction — scale '{}' (seed {DATASET_SEED:#x}), output -> {}\n",
        scale.name,
        out.display()
    );
    match command.as_str() {
        "table1" => table1(&scale),
        "fig1" => fig1(&out),
        "fig8" => fig8(&scale, &out),
        "fig9" => fig9(&scale, &out),
        "fig10" => fig10(&scale, &out),
        "fig11" => fig11(&scale, &out),
        "fig12" => fig12(&scale, &out),
        "fig13" => fig13(&scale, &out),
        "phases" => phases(&scale, &out),
        "scaling" => scaling(&scale, &out),
        "trace" => trace_cmd(&scale, &out),
        "bench" => bench(&scale, huge),
        "labels" => labels_cmd(&scale),
        "sandwich" => sandwich(&scale),
        "all" => {
            table1(&scale);
            fig1(&out);
            fig8(&scale, &out);
            fig9(&scale, &out);
            fig10(&scale, &out);
            fig11(&scale, &out);
            fig12(&scale, &out);
            fig13(&scale, &out);
            phases(&scale, &out);
            scaling(&scale, &out);
            sandwich(&scale);
        }
        other => {
            eprintln!("unknown command '{other}' (see --help in the module docs)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> (String, Scale, PathBuf, bool) {
    let mut command = "all".to_string();
    let mut scale = Scale::default_scale();
    let mut out = PathBuf::from("results");
    let mut huge = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let name = args.next().expect("--scale needs a value");
                scale = Scale::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown scale '{name}' (tiny|small|medium|large|paper)");
                    std::process::exit(2);
                });
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a value")),
            // `bench` only: extend the large-n tier to n = 10^7 (minutes of
            // runtime and ~10× the memory — opt-in).
            "--huge" => huge = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [table1|fig1|fig8|fig9|fig10|fig11|fig12|fig13|phases|scaling|\
                     trace|bench|sandwich|all] [--scale tiny|small|medium|large|paper] [--out DIR]\
                     [--huge]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => command = other.to_string(),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    (command, scale, out, huge)
}

// --------------------------------------------------------------------------
// Table 1
// --------------------------------------------------------------------------

fn table1(scale: &Scale) {
    println!("== Table 1: parameter values (defaults in the rightmost column) ==");
    let mut t = Table::new(vec!["parameter", "values", "default"]);
    t.push_row(vec![
        "n (synthetic)".to_string(),
        format!("{:?}", scale.n_sweep),
        scale.default_n.to_string(),
    ]);
    t.push_row(vec![
        "d (synthetic)".to_string(),
        "[3, 5, 7]".to_string(),
        "5".to_string(),
    ]);
    t.push_row(vec![
        "eps".to_string(),
        "5000 .. collapsing radius".to_string(),
        format!("{DEFAULT_EPS}"),
    ]);
    t.push_row(vec![
        "rho".to_string(),
        format!("{PAPER_RHO_GRID:?}"),
        format!("{DEFAULT_RHO}"),
    ]);
    t.push_row(vec![
        "MinPts".to_string(),
        "fixed".to_string(),
        scale.min_pts.to_string(),
    ]);
    println!("{}", t.render());
}

// --------------------------------------------------------------------------
// Figure 1: the motivating contrast (arbitrary shapes vs k-means)
// --------------------------------------------------------------------------

fn fig1(out: &Path) {
    use dbscan_core::baselines::kmeans;
    use dbscan_core::Assignment;
    use dbscan_eval::kdist::{sorted_kdist_plot, suggest_eps};
    use dbscan_eval::metrics::adjusted_rand_index;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    println!("== Figure 1: arbitrary-shape clusters — DBSCAN vs k-means ==");
    let mut rng = StdRng::seed_from_u64(DATASET_SEED);
    let (pts, truth) = dbscan_datagen::scenes::moons_and_rings(&mut rng);
    let truth_c = Clustering {
        assignments: truth.iter().map(|&l| Assignment::Core(l)).collect(),
        num_clusters: 4,
    };

    let eps = 2.0 * suggest_eps(&sorted_kdist_plot(&pts, 4)).expect("knee");
    let dbscan = rho_approx(&pts, DbscanParams::new(eps, 5).unwrap(), 0.001);
    let km = kmeans(&pts, 4, 200, &mut rng);
    let km_c = Clustering {
        assignments: km.labels.iter().map(|&l| Assignment::Core(l)).collect(),
        num_clusters: km.centroids.len(),
    };

    let mut t = Table::new(vec!["method", "#clusters", "ARI vs truth"]);
    t.push_row(vec![
        "DBSCAN (rho=0.001)".to_string(),
        dbscan.num_clusters.to_string(),
        format!("{:.3}", adjusted_rand_index(&truth_c, &dbscan)),
    ]);
    t.push_row(vec![
        "k-means (k=4)".to_string(),
        km_c.num_clusters.to_string(),
        format!("{:.3}", adjusted_rand_index(&truth_c, &km_c)),
    ]);
    println!("{}", t.render());
    dbscan_viz::svg::write_clusters(&out.join("fig1_dbscan.svg"), &pts, &dbscan, 900, 420, 2.0)
        .expect("write fig1 svg");
    dbscan_viz::svg::write_clusters(&out.join("fig1_kmeans.svg"), &pts, &km_c, 900, 420, 2.0)
        .expect("write fig1 svg");
    println!("renders written to {}/fig1_*.svg\n", out.display());
}

// --------------------------------------------------------------------------
// Figures 8 and 9: the 2D visualization experiment
// --------------------------------------------------------------------------

fn fig8(scale: &Scale, out: &Path) {
    println!(
        "== Figure 8: 2D seed-spreader dataset (n = {}) ==",
        scale.viz_n
    );
    let pts = viz2d_points(scale.viz_n);
    let path = out.join("fig8_points.csv");
    write_points_csv(&path, &pts).expect("write fig8 csv");
    let svg = dbscan_viz::svg::render_points(&pts, 640, 640, 2.0);
    std::fs::write(out.join("fig8.svg"), svg).expect("write fig8 svg");
    println!(
        "{} points written to {} (+ rendered fig8.svg)\n",
        pts.len(),
        path.display()
    );
}

/// Finds an ε at which the exact cluster count drops (a merge boundary), by
/// doubling from `start` and bisecting. Returns (boundary, clusters just below,
/// clusters at/above). `None` if the count never drops before collapse.
fn find_merge_boundary(
    pts: &[Point<2>],
    min_pts: usize,
    start: f64,
) -> Option<(f64, usize, usize)> {
    let clusters_at =
        |eps: f64| gunawan_2d(pts, DbscanParams::new(eps, min_pts).unwrap()).num_clusters;
    let base = clusters_at(start);
    if base <= 1 {
        return None;
    }
    let mut lo = start;
    let mut hi = start;
    while clusters_at(hi) >= base {
        lo = hi;
        hi *= 1.5;
        if hi > 1e9 {
            return None;
        }
    }
    while hi / lo > 1.0005 {
        let mid = (lo * hi).sqrt();
        if clusters_at(mid) >= base {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((hi, base, clusters_at(hi)))
}

fn fig9(scale: &Scale, out: &Path) {
    println!("== Figure 9: exact vs rho-approximate clusters (2D, MinPts = 20) ==");
    let pts = viz2d_points(scale.viz_n);
    let rhos = [0.001, 0.01, 0.1];
    let min_pts = 20;

    // The paper probes ε = 5000 plus two values chosen near a merge boundary
    // *of its dataset* (11300, 12200). The boundary location is dataset-specific,
    // so in addition to the paper's values we locate this dataset's own first
    // merge boundary and probe just below it — the regime where large ρ can
    // legitimately change the output (Figure 6's "bad ε").
    let mut eps_list = vec![5_000.0, 11_300.0, 12_200.0];
    if let Some((boundary, below, above)) = find_merge_boundary(&pts, min_pts, 5_000.0) {
        println!(
            "merge boundary of this dataset: eps ~{boundary:.0} ({below} -> {above} clusters); probing 0.995x and 1.01x"
        );
        eps_list.push((boundary * 0.995 * 10.0).round() / 10.0);
        eps_list.push((boundary * 1.01 * 10.0).round() / 10.0);
    }

    let mut t = Table::new(vec![
        "eps",
        "exact #clusters",
        "rho=0.001",
        "rho=0.01",
        "rho=0.1",
    ]);
    for eps in eps_list {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let exact = gunawan_2d(&pts, params);
        dump_labeled(out, &format!("fig9_exact_eps{eps}"), &pts, &exact);
        dbscan_viz::svg::write_clusters(
            &out.join(format!("fig9_exact_eps{eps}.svg")),
            &pts,
            &exact,
            640,
            640,
            2.5,
        )
        .expect("write fig9 svg");
        let mut cells = vec![format!("{eps}"), exact.num_clusters.to_string()];
        for rho in rhos {
            let approx = rho_approx(&pts, params, rho);
            dump_labeled(out, &format!("fig9_rho{rho}_eps{eps}"), &pts, &approx);
            dbscan_viz::svg::write_clusters(
                &out.join(format!("fig9_rho{rho}_eps{eps}.svg")),
                &pts,
                &approx,
                640,
                640,
                2.5,
            )
            .expect("write fig9 svg");
            let verdict = if same_clustering(&exact, &approx) {
                format!("{} (= exact)", approx.num_clusters)
            } else {
                format!("{} (differs)", approx.num_clusters)
            };
            cells.push(verdict);
        }
        t.push_row(cells);
    }
    println!("{}", t.render());
    println!(
        "labeled dumps + rendered plots written to {}/fig9_*.csv|svg\n",
        out.display()
    );
}

fn dump_labeled<const D: usize>(out: &Path, name: &str, pts: &[Point<D>], c: &Clustering) {
    let labels: Vec<i64> = c
        .flat_labels()
        .into_iter()
        .map(|l| l.map_or(-1, |v| v as i64))
        .collect();
    let path = out.join(format!("{name}.csv"));
    write_labeled_csv(&path, pts, &labels).expect("write labeled csv");
}

// --------------------------------------------------------------------------
// Figure 10: maximum legal rho vs eps
// --------------------------------------------------------------------------

fn fig10(scale: &Scale, out: &Path) {
    println!(
        "== Figure 10: maximum legal rho vs eps (n = {}, MinPts = {}) ==",
        scale.default_n, scale.min_pts
    );
    for kind in DatasetKind::ALL {
        let n = dataset_n(scale, kind);
        with_dataset_points!(kind, n, |pts| {
            let collapse = collapsing_radius(&pts, scale.min_pts, DEFAULT_EPS, 0.02);
            let eps_list = eps_sweep(collapse, 8);
            let mut t = Table::new(vec!["eps", "max legal rho"]);
            for &eps in &eps_list {
                let params = DbscanParams::new(eps, scale.min_pts).unwrap();
                let legal = max_legal_rho(&pts, params, &PAPER_RHO_GRID);
                t.push_row(vec![
                    format!("{eps:.0}"),
                    legal.map_or("<0.001".to_string(), |r| format!("{r}")),
                ]);
            }
            println!(
                "--- {} (collapsing radius ~{:.0}) ---",
                kind.name(),
                collapse
            );
            println!("{}", t.render());
            t.write_csv(&out.join(format!("fig10_{}.csv", kind.name().to_lowercase())))
                .expect("write fig10 csv");
        });
    }
}

/// Linear ε sweep from the paper's 5000 up to the collapsing radius.
fn eps_sweep(collapse: f64, steps: usize) -> Vec<f64> {
    let lo = DEFAULT_EPS.min(collapse);
    let hi = collapse.max(lo * 1.01);
    (0..steps)
        .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
        .collect()
}

fn dataset_n(scale: &Scale, kind: DatasetKind) -> usize {
    if DatasetKind::SYNTHETIC.contains(&kind) {
        scale.default_n
    } else {
        scale.real_n
    }
}

// --------------------------------------------------------------------------
// Figures 11-13: running time
// --------------------------------------------------------------------------

/// The paper's four methods plus one ablation lane: OurExact computing the
/// full BCP per cell pair with no early exit — the cost profile of the paper's
/// own exact implementation (see DESIGN.md, substitutions).
const ALGOS: [&str; 5] = [
    "OurApprox",
    "OurExact",
    "OurExact-bruteBCP",
    "CIT08",
    "KDD96",
];

fn measure_all<const D: usize>(
    pts: &[Point<D>],
    params: DbscanParams,
    rho: f64,
    tracker: &mut BudgetTracker,
) -> [Measurement; 5] {
    [
        tracker.run(0, || {
            rho_approx(pts, params, rho);
        }),
        tracker.run(1, || {
            grid_exact(pts, params);
        }),
        tracker.run(2, || {
            grid_exact_with(pts, params, BcpStrategy::FullBruteBcp);
        }),
        tracker.run(3, || {
            cit08(pts, params, Cit08Config::default());
        }),
        tracker.run(4, || {
            kdd96_rtree(pts, params);
        }),
    ]
}

fn fig11(scale: &Scale, out: &Path) {
    println!(
        "== Figure 11: running time (s) vs cardinality n (eps = {DEFAULT_EPS}, rho = {DEFAULT_RHO}, MinPts = {}) ==",
        scale.min_pts
    );
    for kind in DatasetKind::SYNTHETIC {
        let mut t = Table::new(
            std::iter::once("n".to_string())
                .chain(ALGOS.iter().map(|s| s.to_string()))
                .collect::<Vec<_>>(),
        );
        let mut tracker = BudgetTracker::new(ALGOS.len(), scale.time_budget);
        for &n in &scale.n_sweep {
            with_dataset_points!(kind, n, |pts| {
                let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
                let ms = measure_all(&pts, params, DEFAULT_RHO, &mut tracker);
                let mut row = vec![n.to_string()];
                row.extend(ms.iter().map(|m| m.display()));
                t.push_row(row);
            });
        }
        println!("--- {} ---", kind.name());
        println!("{}", t.render());
        t.write_csv(&out.join(format!("fig11_{}.csv", kind.name().to_lowercase())))
            .expect("write fig11 csv");
    }
}

fn fig12(scale: &Scale, out: &Path) {
    println!(
        "== Figure 12: running time (s) vs radius eps (rho = {DEFAULT_RHO}, MinPts = {}) ==",
        scale.min_pts
    );
    for kind in DatasetKind::ALL {
        let n = dataset_n(scale, kind);
        with_dataset_points!(kind, n, |pts| {
            let collapse = collapsing_radius(&pts, scale.min_pts, DEFAULT_EPS, 0.02);
            let eps_list = eps_sweep(collapse, 6);
            let mut t = Table::new(
                std::iter::once("eps".to_string())
                    .chain(ALGOS.iter().map(|s| s.to_string()))
                    .collect::<Vec<_>>(),
            );
            let mut tracker = BudgetTracker::new(ALGOS.len(), scale.time_budget);
            for &eps in &eps_list {
                let params = DbscanParams::new(eps, scale.min_pts).unwrap();
                let ms = measure_all(&pts, params, DEFAULT_RHO, &mut tracker);
                let mut row = vec![format!("{eps:.0}")];
                row.extend(ms.iter().map(|m| m.display()));
                t.push_row(row);
            }
            println!("--- {} (n = {n}) ---", kind.name());
            println!("{}", t.render());
            t.write_csv(&out.join(format!("fig12_{}.csv", kind.name().to_lowercase())))
                .expect("write fig12 csv");
        });
    }
}

fn fig13(scale: &Scale, out: &Path) {
    println!(
        "== Figure 13: OurApprox running time (s) vs rho (eps = {DEFAULT_EPS}, MinPts = {}) ==",
        scale.min_pts
    );
    let mut t = Table::new(
        std::iter::once("rho".to_string())
            .chain(DatasetKind::ALL.iter().map(|k| k.name().to_string()))
            .collect::<Vec<_>>(),
    );
    // Generate each dataset once; measure per rho.
    let mut columns: Vec<Vec<String>> = Vec::new();
    for kind in DatasetKind::ALL {
        let n = dataset_n(scale, kind);
        with_dataset_points!(kind, n, |pts| {
            let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
            let col: Vec<String> = PAPER_RHO_GRID
                .iter()
                .map(|&rho| {
                    let (_, d) = time_once(|| rho_approx(&pts, params, rho));
                    format!("{:.3}", d.as_secs_f64())
                })
                .collect();
            columns.push(col);
        });
    }
    for (i, &rho) in PAPER_RHO_GRID.iter().enumerate() {
        let mut row = vec![format!("{rho}")];
        row.extend(columns.iter().map(|c| c[i].clone()));
        t.push_row(row);
    }
    println!("{}", t.render());
    t.write_csv(&out.join("fig13.csv"))
        .expect("write fig13 csv");
}

// --------------------------------------------------------------------------
// Per-phase breakdown (the instrumentation layer)
// --------------------------------------------------------------------------

/// One table row from a populated [`Stats`] collector: every phase's wall
/// time in seconds plus the headline counters.
fn phase_row(name: &str, stats: &Stats) -> Vec<String> {
    let r = stats.report();
    let mut row = vec![name.to_string()];
    row.extend(
        Phase::ALL
            .iter()
            .map(|&p| format!("{:.4}", r.phase_secs(p))),
    );
    for c in [Counter::EdgeTests, Counter::EdgesFound, Counter::UnionOps] {
        row.push(r.counter(c).to_string());
    }
    row
}

fn phase_header() -> Vec<String> {
    let mut header = vec!["algorithm".to_string()];
    header.extend(Phase::ALL.iter().map(|p| format!("{}_s", p.name())));
    header.extend(
        [Counter::EdgeTests, Counter::EdgesFound, Counter::UnionOps]
            .iter()
            .map(|c| c.name().to_string()),
    );
    header
}

fn phases(scale: &Scale, out: &Path) {
    println!("== Per-phase breakdown (dbscan-stats/v7 instrumentation; see EXPERIMENTS.md) ==");
    // The breakdown's point is the *ratios* between phases, not absolute
    // scale, so cap n to keep the single uninstrumented-KDD96 lane bounded.
    let n = scale.default_n.min(200_000);
    let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();

    let pts = spreader_points::<5>(n);
    let mut t = Table::new(phase_header());
    {
        let s = Stats::new();
        rho_approx_instrumented(&pts, params, DEFAULT_RHO, &s);
        t.push_row(phase_row("OurApprox", &s));
    }
    {
        let s = Stats::new();
        grid_exact_instrumented(&pts, params, BcpStrategy::TreeAssisted, &s);
        t.push_row(phase_row("OurExact", &s));
    }
    {
        let s = Stats::new();
        rho_approx_par_instrumented(&pts, params, DEFAULT_RHO, None, &s);
        t.push_row(phase_row("OurApprox-par", &s));
    }
    {
        let s = Stats::new();
        grid_exact_par_instrumented(&pts, params, None, &s);
        t.push_row(phase_row("OurExact-par", &s));
    }
    {
        let s = Stats::new();
        cit08_instrumented(&pts, params, Cit08Config::default(), &s);
        t.push_row(phase_row("CIT08", &s));
    }
    {
        let s = Stats::new();
        kdd96_rtree_instrumented(&pts, params, &s);
        t.push_row(phase_row("KDD96", &s));
    }
    println!("--- ss5d (n = {n}) ---");
    println!("{}", t.render());
    t.write_csv(&out.join("phases_ss5d.csv"))
        .expect("write phases csv");
    t.write_json(&out.join("phases_ss5d.json"))
        .expect("write phases json");

    // Gunawan's algorithm only exists in 2D; measure it on the visualization
    // dataset against the exact algorithm under identical parameters.
    let pts2 = viz2d_points(scale.viz_n);
    let params2 = DbscanParams::new(5_000.0, 20).unwrap();
    let mut t2 = Table::new(phase_header());
    {
        let s = Stats::new();
        gunawan_2d_instrumented(&pts2, params2, &s);
        t2.push_row(phase_row("Gunawan2D", &s));
    }
    {
        let s = Stats::new();
        grid_exact_instrumented(&pts2, params2, BcpStrategy::TreeAssisted, &s);
        t2.push_row(phase_row("OurExact", &s));
    }
    println!("--- 2D visualization dataset (n = {}) ---", pts2.len());
    println!("{}", t2.render());
    t2.write_csv(&out.join("phases_2d.csv"))
        .expect("write phases csv");
    t2.write_json(&out.join("phases_2d.json"))
        .expect("write phases json");
    println!(
        "per-phase series written to {}/phases_*.csv|json\n",
        out.display()
    );
}

// --------------------------------------------------------------------------
// Thread scaling (the work-stealing parallel layer)
// --------------------------------------------------------------------------

/// Thread-scaling sweep of the parallel exact and ρ-approximate paths on the
/// 5D seed-spreader dataset: per thread count, wall time, speedup over the
/// sequential algorithm, and the scheduler/union-find counters
/// ([`Counter::EdgeTestsSkipped`], [`Counter::TasksStolen`],
/// [`Counter::UfCasRetries`]). Emits `BENCH_scaling.csv` / `.json`.
fn scaling(scale: &Scale, out: &Path) {
    println!("== Thread scaling: work-stealing parallel exact + rho-approx (ss5d) ==");
    let n = scale.default_n.min(200_000);
    let pts = spreader_points::<5>(n);
    let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    // Powers of two up to the core count, but at least 1, 2, 4 so the sweep
    // has a shape even on small hosts; entries beyond the core count measure
    // scheduler overhead under oversubscription, not speedup.
    let mut sweep = vec![1usize];
    while *sweep.last().unwrap() < cores.max(4) {
        let next = sweep.last().unwrap() * 2;
        sweep.push(next);
    }
    println!(
        "{cores} core(s) available; sweeping threads {sweep:?} \
         (n = {n}, eps = {DEFAULT_EPS}, rho = {DEFAULT_RHO}, MinPts = {})",
        scale.min_pts
    );

    // All lanes run instrumented so every row reports the same way; wall time
    // is the instrumentation's own Phase::Total span.
    let run_exact = |threads: Option<usize>| {
        let s = Stats::new();
        match threads {
            None => grid_exact_instrumented(&pts, params, BcpStrategy::TreeAssisted, &s),
            Some(t) => grid_exact_par_instrumented(&pts, params, Some(t), &s),
        };
        s.report()
    };
    let run_approx = |threads: Option<usize>| {
        let s = Stats::new();
        match threads {
            None => rho_approx_instrumented(&pts, params, DEFAULT_RHO, &s),
            Some(t) => rho_approx_par_instrumented(&pts, params, DEFAULT_RHO, Some(t), &s),
        };
        s.report()
    };

    let mut t = Table::new(vec![
        "threads",
        "exact_s",
        "exact_speedup",
        "approx_s",
        "approx_speedup",
        "exact_edge_tests",
        "exact_edge_tests_skipped",
        "tasks_stolen",
        "uf_cas_retries",
    ]);
    let counters_of = |r: &dbscan_core::StatsReport| {
        [
            r.counter(Counter::EdgeTests),
            r.counter(Counter::EdgeTestsSkipped),
            r.counter(Counter::TasksStolen),
            r.counter(Counter::UfCasRetries),
        ]
    };

    let seq_exact = run_exact(None);
    let seq_approx = run_approx(None);
    let (base_exact, base_approx) = (
        seq_exact.phase_secs(Phase::Total),
        seq_approx.phase_secs(Phase::Total),
    );
    let mut row = vec![
        "seq".to_string(),
        format!("{base_exact:.4}"),
        "1.00".to_string(),
        format!("{base_approx:.4}"),
        "1.00".to_string(),
    ];
    row.extend(counters_of(&seq_exact).iter().map(u64::to_string));
    t.push_row(row);

    for &threads in &sweep {
        let exact = run_exact(Some(threads));
        let approx = run_approx(Some(threads));
        let (es, aps) = (
            exact.phase_secs(Phase::Total),
            approx.phase_secs(Phase::Total),
        );
        let mut row = vec![
            threads.to_string(),
            format!("{es:.4}"),
            format!("{:.2}", base_exact / es.max(1e-12)),
            format!("{aps:.4}"),
            format!("{:.2}", base_approx / aps.max(1e-12)),
        ];
        row.extend(counters_of(&exact).iter().map(u64::to_string));
        t.push_row(row);
    }
    println!("{}", t.render());
    t.write_csv(&out.join("BENCH_scaling.csv"))
        .expect("write scaling csv");
    t.write_json(&out.join("BENCH_scaling.json"))
        .expect("write scaling json");
    println!(
        "scaling series written to {}/BENCH_scaling.csv|json\n",
        out.display()
    );
}

// --------------------------------------------------------------------------
// Event-level trace capture (the dbscan_core::trace layer)
// --------------------------------------------------------------------------

/// Runs the parallel exact algorithm on a seed-spreader workload with event
/// tracing enabled and writes both export formats into the output directory:
/// `trace_ss5d.chrome.json` (load in chrome://tracing or ui.perfetto.dev) and
/// `trace_ss5d.folded.txt` (pipe into a flamegraph renderer).
fn trace_cmd(scale: &Scale, out: &Path) {
    println!("== Event-level trace: parallel exact on ss5d ==");
    let n = scale.default_n.min(100_000);
    let pts = spreader_points::<5>(n);
    let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
    let workers = std::thread::available_parallelism().map_or(1, |c| c.get());

    let ts = TracedStats::new(workers + 1);
    grid_exact_par_instrumented(&pts, params, Some(workers), &ts);
    let snap = ts.tracer.snapshot();

    let chrome_path = out.join("trace_ss5d.chrome.json");
    std::fs::write(&chrome_path, chrome_trace_json(&snap)).expect("write chrome trace");
    let folded_path = out.join("trace_ss5d.folded.txt");
    std::fs::write(&folded_path, folded_stacks(&snap)).expect("write folded trace");

    let report = ts.stats.report();
    println!(
        "n = {n}, {workers} worker(s): {} events on {} timelines ({} dropped), \
         total {:.4}s",
        snap.events.len(),
        snap.num_lanes,
        snap.events_dropped,
        report.phase_secs(Phase::Total)
    );
    for kind in dbscan_core::HistKind::ALL {
        let h = ts.tracer.histograms().snapshot(kind);
        println!(
            "  hist {}: count {} min {} max {}",
            kind.name(),
            h.count,
            h.min,
            h.max
        );
    }
    println!(
        "traces written to {} and {}\n",
        chrome_path.display(),
        folded_path.display()
    );
}

// --------------------------------------------------------------------------
// The perf-trajectory baseline (BENCH_core.json)
// --------------------------------------------------------------------------

/// Runs one bench cell `warmup + reps` times and keeps the repetition with
/// the smallest wall total (min-of-k: the least-disturbed run is the best
/// estimate of the code's cost; means smear scheduler noise and cold-start
/// effects into the baseline — the v1 file's "parallel grid_build 2.4×
/// slower" artifact was exactly that, a first-touch cost attributed to
/// whichever cell ran first).
fn bench_cell(warmup: usize, reps: usize, run: impl Fn(&Stats)) -> dbscan_core::StatsReport {
    for _ in 0..warmup {
        run(&Stats::new());
    }
    let mut best: Option<dbscan_core::StatsReport> = None;
    for _ in 0..reps.max(1) {
        let s = Stats::new();
        run(&s);
        keep_min(&mut best, s.report());
    }
    best.unwrap()
}

fn keep_min(best: &mut Option<dbscan_core::StatsReport>, r: dbscan_core::StatsReport) {
    if best
        .as_ref()
        .is_none_or(|b| r.phase_nanos(Phase::Total) < b.phase_nanos(Phase::Total))
    {
        *best = Some(r);
    }
}

/// Paired variant of [`bench_cell`] for head-to-head cells (sequential vs
/// parallel on the same input): the two runs alternate within one rep loop,
/// so slow drift between bench invocations — frequency scaling, page-cache
/// state, a noisy neighbor — lands on both sides equally instead of biasing
/// whichever cell happened to run in the worse window. Un-paired min-of-k
/// showed the *same code path* differing by ±5% between back-to-back bench
/// invocations; interleaving is what makes the seq/par comparison a real
/// regression signal. Within a rep the A/B order alternates (A-B, B-A, …):
/// a fixed order leaks per-rep ordering bias past the per-side minima —
/// whichever side always runs second inherits, every rep, whatever state
/// the first run leaves behind (identical code paths measured ~2-8% apart
/// with a fixed order, and the gap followed the slot, not the code).
fn bench_pair(
    warmup: usize,
    reps: usize,
    run_a: impl Fn(&Stats),
    run_b: impl Fn(&Stats),
) -> (dbscan_core::StatsReport, dbscan_core::StatsReport) {
    for _ in 0..warmup {
        run_a(&Stats::new());
        run_b(&Stats::new());
    }
    let (mut best_a, mut best_b) = (None, None);
    for rep in 0..reps.max(1) {
        type Run<'a> = &'a dyn Fn(&Stats);
        let (first, second): (Run, Run) = if rep % 2 == 0 {
            (&run_a, &run_b)
        } else {
            (&run_b, &run_a)
        };
        let s = Stats::new();
        first(&s);
        let first_report = s.report();
        let s = Stats::new();
        second(&s);
        let second_report = s.report();
        let (ra, rb) = if rep % 2 == 0 {
            (first_report, second_report)
        } else {
            (second_report, first_report)
        };
        keep_min(&mut best_a, ra);
        keep_min(&mut best_b, rb);
    }
    (best_a.unwrap(), best_b.unwrap())
}

/// One `BENCH_core.json` entry line. `threads_requested` is the raw
/// `--threads`-style value (`null` = sequential path); `threads` is the
/// *resolved* worker count the run actually used, and is what cross-machine
/// comparisons should key on (the v1 file recorded the raw `0` and was
/// unreadable off the recording machine).
#[allow(clippy::too_many_arguments)]
fn bench_entry(
    dataset: &str,
    n: usize,
    algorithm: &str,
    threads_requested: Option<usize>,
    resolved: usize,
    warmup: usize,
    reps: usize,
    r: &dbscan_core::StatsReport,
) -> String {
    let mode = if threads_requested.is_some() { "par" } else { "seq" };
    println!(
        "  {dataset} n={n} {algorithm} {mode}@{resolved}: total {:.4}s",
        r.phase_secs(Phase::Total)
    );
    format!(
        "{{\"dataset\":\"{dataset}\",\"n\":{n},\"algorithm\":\"{algorithm}\",\
         \"mode\":\"{mode}\",\"threads_requested\":{},\"threads\":{resolved},\
         \"warmup\":{warmup},\"reps\":{reps},\"total_s\":{:.9},\"phases\":{},\
         \"phases_ns\":{}}}",
        threads_requested.map_or("null".to_string(), |t| t.to_string()),
        r.phase_secs(Phase::Total),
        r.phases_json(),
        r.phases_ns_json()
    )
}

/// Runs the perf-trajectory baseline and writes `BENCH_core.json`
/// (`dbscan-bench-core/v2`). Two tiers:
///
/// * **Fixed small matrix** (n = 20k, ss3d + ss5d, exact + approx,
///   sequential + all-cores parallel): the regression canary. With the
///   persistent worker pool, parallel totals here must not exceed sequential
///   — `scripts/verify.sh` guards exactly that under `VERIFY_BENCH=1`.
/// * **Large-n tier** (ss3d at n = 10^6; `--huge` adds 10^7): where the grid
///   constant factors and parallel speedup actually matter. Parallel runs
///   sweep 1/2/4/all workers (deduplicated by resolved count, so a host
///   whose "all" is already covered doesn't re-run it).
///
/// Every cell runs warm-up + min-of-k (see [`bench_cell`]); each entry
/// records the requested and *resolved* thread counts, and the envelope
/// records the host's core count. The matrix is intentionally independent of
/// `--scale` so the file is comparable across machines and PRs.
fn bench(scale: &Scale, huge: bool) {
    println!("== Perf-trajectory baseline: fixed seed-spreader matrix -> BENCH_core.json ==");
    const BENCH_N: usize = 20_000;
    const LARGE_N: usize = 1_000_000;
    const HUGE_N: usize = 10_000_000;
    let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = Vec::new();

    // Tier 1: the fixed 20k matrix (2 warm-ups, min of 7 — cells are
    // millisecond-scale, so the extra repetitions are cheap and the min is
    // stable against scheduler noise). Sequential and all-cores-parallel reps
    // are *interleaved* per cell (see [`bench_pair`]) so the seq/par
    // comparison the verify guard reads is drift-free. `Some(0)` = the
    // core's "all cores" convention (`--threads 0`).
    let (warmup, reps) = (2, 7);
    let resolved_all = resolve_threads(Some(0));
    let pts_3 = spreader_points::<3>(BENCH_N);
    let pts_5 = spreader_points::<5>(BENCH_N);
    for algorithm in ["exact", "approx"] {
        let (seq3, par3) = bench_pair(
            warmup,
            reps,
            |s| {
                if algorithm == "exact" {
                    grid_exact_instrumented(&pts_3, params, BcpStrategy::TreeAssisted, s);
                } else {
                    rho_approx_instrumented(&pts_3, params, DEFAULT_RHO, s);
                }
            },
            |s| {
                if algorithm == "exact" {
                    grid_exact_par_instrumented(&pts_3, params, Some(0), s);
                } else {
                    rho_approx_par_instrumented(&pts_3, params, DEFAULT_RHO, Some(0), s);
                }
            },
        );
        entries.push(bench_entry(
            "ss3d", BENCH_N, algorithm, None, 1, warmup, reps, &seq3,
        ));
        entries.push(bench_entry(
            "ss3d",
            BENCH_N,
            algorithm,
            Some(0),
            resolved_all,
            warmup,
            reps,
            &par3,
        ));
        let (seq5, par5) = bench_pair(
            warmup,
            reps,
            |s| {
                if algorithm == "exact" {
                    grid_exact_instrumented(&pts_5, params, BcpStrategy::TreeAssisted, s);
                } else {
                    rho_approx_instrumented(&pts_5, params, DEFAULT_RHO, s);
                }
            },
            |s| {
                if algorithm == "exact" {
                    grid_exact_par_instrumented(&pts_5, params, Some(0), s);
                } else {
                    rho_approx_par_instrumented(&pts_5, params, DEFAULT_RHO, Some(0), s);
                }
            },
        );
        entries.push(bench_entry(
            "ss5d", BENCH_N, algorithm, None, 1, warmup, reps, &seq5,
        ));
        entries.push(bench_entry(
            "ss5d",
            BENCH_N,
            algorithm,
            Some(0),
            resolved_all,
            warmup,
            reps,
            &par5,
        ));
    }
    drop(pts_3);
    drop(pts_5);

    // Tier 2: large n, ss3d, thread sweep (1 warm-up, min of 3; the huge tier
    // runs each cell once, cold — at 10^7 a single repetition is already
    // minutes of work and first-touch effects are amortized away).
    let mut sizes = vec![(LARGE_N, 1usize, 3usize)];
    if huge {
        sizes.push((HUGE_N, 0, 1));
    }
    for (n, warmup, reps) in sizes {
        println!("  -- large-n tier: ss3d n={n} --");
        let pts = spreader_points::<3>(n);
        for algorithm in ["exact", "approx"] {
            let seq = bench_cell(warmup, reps, |s| {
                if algorithm == "exact" {
                    grid_exact_instrumented(&pts, params, BcpStrategy::TreeAssisted, s);
                } else {
                    rho_approx_instrumented(&pts, params, DEFAULT_RHO, s);
                }
            });
            entries.push(bench_entry(
                "ss3d", n, algorithm, None, 1, warmup, reps, &seq,
            ));
            // 1/2/4/all workers, deduplicated by resolved count.
            let mut seen = Vec::new();
            for threads in [Some(1), Some(2), Some(4), Some(0)] {
                let resolved = resolve_threads(threads);
                if seen.contains(&resolved) {
                    continue;
                }
                seen.push(resolved);
                let r = bench_cell(warmup, reps, |s| {
                    if algorithm == "exact" {
                        grid_exact_par_instrumented(&pts, params, threads, s);
                    } else {
                        rho_approx_par_instrumented(&pts, params, DEFAULT_RHO, threads, s);
                    }
                });
                entries.push(bench_entry(
                    "ss3d", n, algorithm, threads, resolved, warmup, reps, &r,
                ));
            }
        }
    }

    let json = format!(
        "{{\"schema\":\"dbscan-bench-core/v2\",\"eps\":{DEFAULT_EPS},\"rho\":{DEFAULT_RHO},\
         \"min_pts\":{},\"cores\":{cores},\"entries\":[{}]}}\n",
        scale.min_pts,
        entries.join(",")
    );
    let path = PathBuf::from("BENCH_core.json");
    std::fs::write(&path, json.clone()).expect("write BENCH_core.json");
    // Perf trajectory: every recorded run also appends one line to
    // BENCH_history.jsonl (unix timestamp + the same envelope), so successive
    // recordings remain comparable after BENCH_core.json is overwritten.
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = format!("{{\"recorded_unix\":{ts},\"run\":{}}}\n", json.trim_end());
    let mut history = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_history.jsonl")
        .expect("open BENCH_history.jsonl");
    std::io::Write::write_all(&mut history, line.as_bytes()).expect("append bench history");
    println!("baseline written to {} (history appended)\n", path.display());
}

// --------------------------------------------------------------------------
// Label fingerprints (bit-identity canary)
// --------------------------------------------------------------------------

/// FNV-1a over a canonical byte rendering of the assignments: discriminant
/// byte + little-endian cluster ids (border lists are sorted and deduped by
/// construction, so the rendering is unique per clustering).
fn label_fingerprint(c: &Clustering) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for a in &c.assignments {
        match a {
            dbscan_core::Assignment::Core(id) => {
                eat(1);
                id.to_le_bytes().into_iter().for_each(&mut eat);
            }
            dbscan_core::Assignment::Border(ids) => {
                eat(2);
                for id in ids {
                    id.to_le_bytes().into_iter().for_each(&mut eat);
                }
            }
            dbscan_core::Assignment::Noise => eat(0),
        }
    }
    (c.num_clusters as u64).wrapping_add(h)
}

/// Prints one `dataset algorithm mode fingerprint` line per cell of the bench
/// matrix (n = 20k, ss3d + ss5d, exact + approx, sequential + all-cores
/// parallel). The output is deterministic, so diffing it across code changes
/// is a bit-identity check of the full label output — `scripts/verify.sh`
/// uses it to assert the parallel path agrees with the sequential one, and
/// perf PRs diff it before/after to prove kernels did not move a label.
fn labels_cmd(scale: &Scale) {
    println!("== Label fingerprints: fixed seed-spreader matrix (n = 20k) ==");
    const BENCH_N: usize = 20_000;
    let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
    let run = |dataset: &str, clusterings: [(&str, &str, Clustering); 4]| {
        for (algorithm, mode, c) in clusterings {
            println!(
                "labels {dataset} {algorithm} {mode} {:016x}",
                label_fingerprint(&c)
            );
        }
    };
    let pts3 = spreader_points::<3>(BENCH_N);
    run(
        "ss3d",
        [
            ("exact", "seq", grid_exact(&pts3, params)),
            (
                "exact",
                "par",
                dbscan_core::parallel::grid_exact_par(&pts3, params, Some(0)),
            ),
            ("approx", "seq", rho_approx(&pts3, params, DEFAULT_RHO)),
            (
                "approx",
                "par",
                dbscan_core::parallel::rho_approx_par(&pts3, params, DEFAULT_RHO, Some(0)),
            ),
        ],
    );
    drop(pts3);
    let pts5 = spreader_points::<5>(BENCH_N);
    run(
        "ss5d",
        [
            ("exact", "seq", grid_exact(&pts5, params)),
            (
                "exact",
                "par",
                dbscan_core::parallel::grid_exact_par(&pts5, params, Some(0)),
            ),
            ("approx", "seq", rho_approx(&pts5, params, DEFAULT_RHO)),
            (
                "approx",
                "par",
                dbscan_core::parallel::rho_approx_par(&pts5, params, DEFAULT_RHO, Some(0)),
            ),
        ],
    );
}

// --------------------------------------------------------------------------
// Theorem 3 empirical check
// --------------------------------------------------------------------------

fn sandwich(scale: &Scale) {
    println!("== Theorem 3 (sandwich) empirical check ==");
    let n = (scale.default_n / 10).max(2_000);
    let pts = spreader_points::<3>(n);
    let mut t = Table::new(vec!["rho", "outcome"]);
    for rho in [0.001, 0.01, 0.1, 0.5] {
        let params = DbscanParams::new(DEFAULT_EPS, scale.min_pts).unwrap();
        let inner = grid_exact(&pts, params);
        let approx = rho_approx(&pts, params, rho);
        let outer = grid_exact(&pts, params.inflate(rho));
        let outcome = match check_sandwich(&inner, &approx, &outer) {
            SandwichOutcome::Holds => "holds".to_string(),
            other => format!("VIOLATED: {other:?}"),
        };
        t.push_row(vec![format!("{rho}"), outcome]);
    }
    println!("{}", t.render());
}

// --------------------------------------------------------------------------
// loadgen: concurrent client harness for `dbscan serve`
// --------------------------------------------------------------------------

/// What a single loadgen client expects its job to resolve to.
#[derive(Clone, Copy, PartialEq)]
enum JobKind {
    Healthy,
    Faulted,
    PastDeadline,
}

struct JobOutcome {
    kind: JobKind,
    latency_ms: f64,
    state: String,
    outcome: String,
    error_code: String,
    shed_retries: u64,
    degraded: bool,
    ok: bool,
    /// Inline Chrome trace, when the job requested one (`--traced`).
    trace: Option<String>,
}

/// `repro crashchaos`: crash-durability drill — SIGKILL a journaled daemon
/// mid-burst and prove the restart loses nothing that was acked.
///
/// The drill: spawn `dbscan serve --journal DIR --journal-sync always`,
/// submit a burst of paused jobs, deliver a few results, SIGKILL the daemon
/// at a seeded point, restart it on the same journal, and interrogate every
/// acked id. The recovery invariant: a job whose result was delivered
/// pre-kill has a durable tombstone and must answer `unknown_job` (it is
/// never executed twice); every other acked job must resolve to `done` with
/// a label hash bit-identical to the standalone run (carrying
/// `recovered:true`) or `unknown_job` (terminal pre-kill, result consumed
/// by the crash — results are consume-once). The daemon's `recovered_jobs`
/// counter must equal the replayed count exactly, and the journal must have
/// compacted below its trigger by quiescence. All randomness (kill point,
/// pre-kill dwell) is SplitMix64 from `--seed`; no wall clock.
fn crashchaos(argv: Vec<String>) -> i32 {
    use dbscan_server::json::{obj, parse, Value};
    use dbscan_server::{label_hash, Client};
    use std::process::{Command, Stdio};
    use std::time::Duration;

    let mut bin = PathBuf::from("target/release/dbscan");
    let mut jobs = 18usize;
    let mut seed = 42u64;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--bin" => bin = PathBuf::from(val("--bin")),
            "--jobs" => jobs = val("--jobs").parse().expect("--jobs: integer"),
            "--seed" => seed = val("--seed").parse().expect("--seed: integer"),
            "--help" | "-h" => {
                eprintln!("usage: repro crashchaos [--bin PATH] [--jobs N] [--seed N]");
                return 0;
            }
            other => {
                eprintln!("crashchaos: unknown flag '{other}'");
                return 2;
            }
        }
    }
    if jobs < 6 {
        eprintln!("crashchaos: --jobs must be at least 6 for a meaningful kill window");
        return 2;
    }
    if !bin.exists() {
        eprintln!(
            "crashchaos: daemon binary {} not found (run `cargo build --release` or pass --bin)",
            bin.display()
        );
        return 2;
    }

    const COMPACT_BYTES: u64 = 65_536;
    let base = std::env::temp_dir().join(format!("dbscan-crashchaos-{}", std::process::id()));
    let journal_dir = base.join("journal");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&journal_dir).expect("create journal dir");
    let sock = base.join("daemon.sock");

    // Standalone ground truth for the burst's one dataset: replayed jobs
    // must reproduce this hash bit-for-bit.
    let pts = spreader_points::<2>(1_200);
    let params = DbscanParams::new(DEFAULT_EPS, 10).unwrap();
    let expected = format!("{:016x}", label_hash(&grid_exact(&pts, params).flat_labels()));
    let points_json = Value::Arr(
        pts.iter()
            .map(|p| Value::Arr(p.0.iter().map(|&c| Value::Num(c)).collect()))
            .collect(),
    );

    // SplitMix64 over --seed: the kill point and the pre-kill dwell are the
    // only random choices, and both replay exactly for a given seed.
    let mut rng_state = seed;
    let mut rng = move || {
        rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let spawn_daemon = |tag: &str| {
        let out = std::fs::File::create(base.join(format!("{tag}.stdout"))).expect("stdout file");
        let err = std::fs::File::create(base.join(format!("{tag}.stderr"))).expect("stderr file");
        Command::new(&bin)
            .arg("serve")
            .arg("--socket")
            .arg(&sock)
            .arg("--journal")
            .arg(&journal_dir)
            .args(["--journal-sync", "always"])
            .arg("--journal-compact-bytes")
            .arg(COMPACT_BYTES.to_string())
            .args(["--workers", "2", "--max-queue", "64", "--log-level", "warn"])
            .stdout(Stdio::from(out))
            .stderr(Stdio::from(err))
            .spawn()
            .expect("spawn daemon")
    };

    let submit_req = |i: usize| {
        obj(vec![
            ("verb", Value::Str("submit".to_string())),
            ("points", points_json.clone()),
            ("eps", Value::Num(params.eps())),
            ("min_pts", Value::Num(params.min_pts() as f64)),
            ("tag", Value::Str(format!("chaos-{i}"))),
            ("labels", Value::Bool(false)),
            // A worker dwell long enough that the SIGKILL lands mid-burst.
            ("pause_ms", Value::Num(25.0)),
        ])
    };
    let result_req = |id: u64| {
        obj(vec![
            ("verb", Value::Str("result".to_string())),
            ("job", Value::Num(id as f64)),
            ("timeout_ms", Value::Num(60_000.0)),
        ])
    };

    println!(
        "== crashchaos: {jobs} jobs, seed {seed:#x}, journal {} ==",
        journal_dir.display()
    );
    let mut child = spawn_daemon("daemon1");
    let mut client =
        Client::connect_unix_retry(&sock, Duration::from_secs(10)).expect("connect to daemon");

    // Phase 1: submit part of the burst, consume a few results (minting
    // durable tombstones), submit the rest, then SIGKILL at a seeded dwell.
    let kill_after = jobs / 3 + (rng() as usize) % (jobs / 3);
    let mut acked: Vec<u64> = Vec::new();
    for i in 0..kill_after {
        let resp = client.call(&submit_req(i)).expect("submit");
        if resp.get("ok").and_then(Value::as_bool) != Some(true) {
            let _ = child.kill();
            return chaos_fail(&base, &format!("submit {i} not admitted: {}", resp.to_line()));
        }
        acked.push(resp.get("job").and_then(Value::as_u64).expect("job id"));
    }
    let mut delivered: Vec<u64> = Vec::new();
    for &id in acked.iter().take(3) {
        let resp = client.call(&result_req(id)).expect("result");
        if resp.get("state").and_then(Value::as_str) != Some("done")
            || resp.get("label_hash").and_then(Value::as_str) != Some(expected.as_str())
        {
            let _ = child.kill();
            return chaos_fail(
                &base,
                &format!("pre-kill result wrong for job {id}: {}", resp.to_line()),
            );
        }
        delivered.push(id);
    }
    for i in kill_after..jobs {
        let resp = client.call(&submit_req(i)).expect("submit");
        if resp.get("ok").and_then(Value::as_bool) != Some(true) {
            let _ = child.kill();
            return chaos_fail(&base, &format!("submit {i} not admitted: {}", resp.to_line()));
        }
        acked.push(resp.get("job").and_then(Value::as_u64).expect("job id"));
    }
    std::thread::sleep(Duration::from_millis(rng() % 40));
    // `Child::kill` is SIGKILL on unix: no drain, no destructors, nothing
    // survives but what fsync already put on disk.
    child.kill().expect("SIGKILL daemon");
    let _ = child.wait();
    drop(client);
    println!(
        "crashchaos: SIGKILLed daemon after {} acks ({} results delivered)",
        acked.len(),
        delivered.len()
    );

    // Phase 2: restart on the same journal and interrogate every acked id.
    let mut child2 = spawn_daemon("daemon2");
    let mut client =
        Client::connect_unix_retry(&sock, Duration::from_secs(10)).expect("reconnect");
    let mut replayed = 0u64;
    for &id in &acked {
        let resp = client.call(&result_req(id)).expect("post-restart result");
        let tombstoned = resp
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            == Some("unknown_job");
        if delivered.contains(&id) {
            if !tombstoned {
                let _ = child2.kill();
                return chaos_fail(
                    &base,
                    &format!("delivered job {id} was re-run after restart: {}", resp.to_line()),
                );
            }
            continue;
        }
        if tombstoned {
            // Terminal before the kill, result consumed by the crash: legal
            // (results are consume-once), just no longer replayable.
            continue;
        }
        if resp.get("state").and_then(Value::as_str) != Some("done")
            || resp.get("label_hash").and_then(Value::as_str) != Some(expected.as_str())
            || resp.get("recovered").and_then(Value::as_bool) != Some(true)
        {
            let _ = child2.kill();
            return chaos_fail(
                &base,
                &format!("job {id} did not replay bit-identically: {}", resp.to_line()),
            );
        }
        replayed += 1;
    }
    if replayed == 0 {
        let _ = child2.kill();
        return chaos_fail(
            &base,
            "kill landed after the burst drained; nothing was replayed (raise --jobs)",
        );
    }
    let health = client
        .call(&obj(vec![("verb", Value::Str("health".to_string()))]))
        .expect("health");
    let recovered_jobs = health
        .get("stats")
        .and_then(|s| s.get("recovered_jobs"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if recovered_jobs != replayed {
        let _ = child2.kill();
        return chaos_fail(
            &base,
            &format!("recovered_jobs={recovered_jobs} but {replayed} jobs replayed"),
        );
    }

    // Graceful shutdown; the final stats envelope lands on daemon2's stdout.
    let _ = client.call(&obj(vec![("verb", Value::Str("shutdown".to_string()))]));
    drop(client);
    let _ = child2.wait();
    let stdout = std::fs::read_to_string(base.join("daemon2.stdout")).unwrap_or_default();
    let envelope = stdout
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .and_then(|l| parse(l.trim()).ok());
    let Some(envelope) = envelope else {
        return chaos_fail(&base, "daemon2 printed no stats envelope on stdout");
    };
    let jstat = |k: &str| {
        envelope
            .get("journal")
            .and_then(|j| j.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let (jbytes, compactions) = (jstat("bytes"), jstat("compactions"));
    let disk = std::fs::metadata(journal_dir.join(dbscan_server::journal::JOURNAL_FILE))
        .map(|m| m.len())
        .unwrap_or(0);
    if compactions == 0 || jbytes > COMPACT_BYTES || disk > COMPACT_BYTES {
        return chaos_fail(
            &base,
            &format!(
                "journal failed to compact (bytes={jbytes} disk={disk} \
                 compactions={compactions} trigger={COMPACT_BYTES})"
            ),
        );
    }

    println!(
        "crashchaos: recovery invariant ok (acked={} delivered={} replayed={replayed} \
         recovered_jobs={recovered_jobs})",
        acked.len(),
        delivered.len()
    );
    println!(
        "crashchaos: journal compacted to {disk} bytes (trigger {COMPACT_BYTES}, \
         compactions {compactions})"
    );
    let _ = std::fs::remove_dir_all(&base);
    0
}

fn chaos_fail(base: &Path, msg: &str) -> i32 {
    eprintln!("crashchaos: FAIL: {msg}");
    eprintln!("crashchaos: artifacts kept in {}", base.display());
    1
}

fn loadgen(argv: Vec<String>) -> i32 {
    use dbscan_server::json::{obj, Value};
    use dbscan_server::{Backoff, Client};

    let mut socket: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut jobs = 16usize;
    let mut faulted = 0usize;
    let mut past_deadline = 0usize;
    let mut traced = 0usize;
    let mut out = PathBuf::from("results");
    let mut metrics_out: Option<PathBuf> = None;
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(val("--socket"))),
            "--connect" => connect = Some(val("--connect")),
            "--jobs" => jobs = val("--jobs").parse().expect("--jobs: integer"),
            "--faulted" => faulted = val("--faulted").parse().expect("--faulted: integer"),
            "--past-deadline" => {
                past_deadline = val("--past-deadline").parse().expect("--past-deadline: integer");
            }
            "--traced" => traced = val("--traced").parse().expect("--traced: integer"),
            "--out" => out = PathBuf::from(val("--out")),
            "--metrics-out" => metrics_out = Some(PathBuf::from(val("--metrics-out"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro loadgen (--socket PATH | --connect HOST:PORT) [--jobs N] \
                     [--faulted N] [--past-deadline N] [--out DIR] [--metrics-out FILE] \
                     [--traced N]"
                );
                return 0;
            }
            other => {
                eprintln!("loadgen: unknown flag '{other}'");
                return 2;
            }
        }
    }
    if socket.is_none() == connect.is_none() {
        eprintln!("loadgen: exactly one of --socket or --connect is required");
        return 2;
    }
    if faulted + past_deadline > jobs {
        eprintln!("loadgen: --faulted + --past-deadline exceed --jobs");
        return 2;
    }
    let dial = move || -> std::io::Result<Client> {
        match (&socket, &connect) {
            (Some(path), _) => Client::connect_unix(path),
            (_, Some(addr)) => Client::connect_tcp(addr),
            _ => unreachable!(),
        }
    };

    // One shared dataset: small enough that a 16-job burst resolves in
    // seconds even on the 1-core box, big enough to be non-trivial.
    let pts = spreader_points::<2>(2_000);
    let points_json = Value::Arr(
        pts.iter()
            .map(|p| Value::Arr(p.0.iter().map(|&c| Value::Num(c)).collect()))
            .collect(),
    );
    let params = DbscanParams::new(DEFAULT_EPS, 10).unwrap();

    // Probe the daemon before unleashing the burst.
    {
        let mut probe = match dial() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("loadgen: cannot reach daemon: {e}");
                return 1;
            }
        };
        let health = probe
            .call(&obj(vec![("verb", Value::Str("health".to_string()))]))
            .expect("health call");
        if health.get("ok").and_then(Value::as_bool) != Some(true) {
            eprintln!("loadgen: daemon unhealthy: {}", health.to_line());
            return 1;
        }
    }

    // Optional server-side metrics poller: scrape the `metrics` verb on a
    // short interval for the duration of the burst, so the BENCH artifact
    // captures queue depth and shed/degraded counts *during* the load, not
    // just the quiescent totals.
    let poll_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let poller = metrics_out.as_ref().map(|_| {
        let stop = std::sync::Arc::clone(&poll_stop);
        let dial = dial.clone();
        std::thread::spawn(move || -> Vec<(f64, Vec<(String, f64)>)> {
            let mut samples = Vec::new();
            let t0 = std::time::Instant::now();
            let mut client = match dial() {
                Ok(c) => c,
                Err(_) => return samples,
            };
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if let Ok(text) = client.metrics_text() {
                    samples.push((
                        t0.elapsed().as_secs_f64() * 1e3,
                        dbscan_server::parse_exposition(&text),
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            samples
        })
    });

    println!(
        "== loadgen: {jobs} concurrent jobs ({faulted} faulted, {past_deadline} past-deadline) =="
    );
    let t_all = std::time::Instant::now();
    let workers: Vec<std::thread::JoinHandle<JobOutcome>> = (0..jobs)
        .map(|i| {
            let kind = if i < faulted {
                JobKind::Faulted
            } else if i < faulted + past_deadline {
                JobKind::PastDeadline
            } else {
                JobKind::Healthy
            };
            let points_json = points_json.clone();
            let dial = dial.clone();
            let want_trace =
                matches!(kind, JobKind::Healthy) && i < faulted + past_deadline + traced;
            std::thread::spawn(move || {
                let mut client = dial().expect("connect");
                let mut members = vec![
                    ("verb", Value::Str("submit".to_string())),
                    ("points", points_json),
                    ("eps", Value::Num(params.eps())),
                    ("min_pts", Value::Num(params.min_pts() as f64)),
                    ("tag", Value::Str(format!("loadgen-{i}"))),
                    // Skip the label payload: loadgen measures service
                    // latency, not transfer of 2000-element arrays.
                    ("labels", Value::Bool(false)),
                ];
                if want_trace {
                    members.push(("trace", Value::Str("chrome".to_string())));
                }
                match kind {
                    JobKind::Faulted => {
                        members.push(("faults", Value::Str("seed=42,edge=1".to_string())));
                        members.push(("recovery", Value::Str("fail".to_string())));
                    }
                    JobKind::PastDeadline => {
                        members.push(("deadline", Value::Str("1ms".to_string())));
                        members.push(("pause_ms", Value::Num(100.0)));
                    }
                    JobKind::Healthy => {}
                }
                let req = obj(members);
                let t0 = std::time::Instant::now();
                // Seeded jittered exponential backoff so shed clients don't
                // retry in lockstep; honours `retry_after_ms` when present.
                // Seed derives from the job index, keeping bursts
                // deterministic run-to-run.
                let mut backoff = Backoff::new(
                    0x10ad_6e4e_u64 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    1_000,
                );
                let resp = client.call_retrying(&req, &mut backoff).expect("submit");
                let shed_retries = backoff.retries;
                let job = if resp.get("ok").and_then(Value::as_bool) == Some(true) {
                    resp.get("job").and_then(Value::as_u64).expect("job id")
                } else {
                    let code = resp
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                    return JobOutcome {
                        kind,
                        latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                        state: "rejected".to_string(),
                        outcome: String::new(),
                        error_code: code,
                        shed_retries,
                        degraded: false,
                        ok: false,
                        trace: None,
                    };
                };
                let resp = client
                    .call(&obj(vec![
                        ("verb", Value::Str("result".to_string())),
                        ("job", Value::Num(job as f64)),
                    ]))
                    .expect("result");
                let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
                let state = resp
                    .get("state")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let outcome = resp
                    .get("outcome")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                let error_code = resp
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string();
                let trace = resp
                    .get("trace")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                let ok = match kind {
                    JobKind::Healthy => {
                        state == "done"
                            && (outcome == "exact" || outcome == "degraded")
                            && (!want_trace || trace.is_some())
                    }
                    JobKind::Faulted => state == "failed" && error_code == "worker_panicked",
                    JobKind::PastDeadline => {
                        state == "failed" && error_code == "deadline_exceeded"
                    }
                };
                JobOutcome {
                    kind,
                    latency_ms,
                    state,
                    outcome: outcome.clone(),
                    error_code,
                    shed_retries,
                    degraded: outcome == "degraded",
                    ok,
                    trace,
                }
            })
        })
        .collect();
    let outcomes: Vec<JobOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let wall_ms = t_all.elapsed().as_secs_f64() * 1e3;
    poll_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let metric_samples = poller.map(|h| h.join().expect("metrics poller"));

    // Quiescence accounting from the daemon's own stats envelope.
    let stats = dial()
        .expect("reconnect")
        .call(&obj(vec![("verb", Value::Str("health".to_string()))]))
        .expect("health call");
    let stat = |k: &str| {
        stats
            .get("stats")
            .and_then(|s| s.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let (submitted, completed, failed, cancelled) = (
        stat("submitted"),
        stat("completed"),
        stat("failed"),
        stat("cancelled"),
    );
    let accounting_ok = submitted == completed + failed + cancelled;

    let mut t = Table::new(vec!["kind", "jobs", "ok", "shed retries", "degraded"]);
    for (kind, name) in [
        (JobKind::Healthy, "healthy"),
        (JobKind::Faulted, "faulted"),
        (JobKind::PastDeadline, "past-deadline"),
    ] {
        let of_kind: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.kind == kind).collect();
        if of_kind.is_empty() {
            continue;
        }
        t.push_row(vec![
            name.to_string(),
            of_kind.len().to_string(),
            of_kind.iter().filter(|o| o.ok).count().to_string(),
            of_kind.iter().map(|o| o.shed_retries).sum::<u64>().to_string(),
            of_kind.iter().filter(|o| o.degraded).count().to_string(),
        ]);
    }
    println!("{}", t.render());
    let all_ok = outcomes.iter().all(|o| o.ok);
    for o in outcomes.iter().filter(|o| !o.ok) {
        eprintln!(
            "loadgen: unexpected resolution: state={} outcome={} error={}",
            o.state, o.outcome, o.error_code
        );
    }
    println!(
        "loadgen: accounting {} (submitted={submitted} completed={completed} failed={failed} \
         cancelled={cancelled} shed={} degraded={}) wall={wall_ms:.0}ms",
        if accounting_ok { "ok" } else { "MISMATCH" },
        stat("shed_jobs"),
        stat("degraded_jobs"),
    );

    // Satellite cross-check: the `metrics` exposition and the stats envelope
    // project the same atomics, so they must agree exactly at quiescence.
    let expo = dial()
        .expect("reconnect")
        .metrics_text()
        .expect("metrics scrape");
    let parsed = dbscan_server::parse_exposition(&expo);
    let metric = |name: &str| {
        let full = format!("dbscan_server_{name}");
        parsed
            .iter()
            .find(|(n, _)| *n == full)
            .map(|(_, v)| *v as u64)
            .unwrap_or(0)
    };
    let metrics_match = metric("jobs_submitted_total") == submitted
        && metric("jobs_completed_total") == completed
        && metric("jobs_failed_total") == failed
        && metric("jobs_cancelled_total") == cancelled;
    println!(
        "loadgen: metrics cross-check {} (exposition submitted={} completed={} failed={} \
         cancelled={} worker_panics={})",
        if metrics_match { "ok" } else { "MISMATCH" },
        metric("jobs_submitted_total"),
        metric("jobs_completed_total"),
        metric("jobs_failed_total"),
        metric("jobs_cancelled_total"),
        metric("worker_panics_total"),
    );

    std::fs::create_dir_all(&out).expect("cannot create output directory");
    if let Some(tr) = outcomes.iter().find_map(|o| o.trace.as_ref()) {
        let trace_path = out.join("loadgen_trace.json");
        std::fs::write(&trace_path, tr).expect("cannot write trace");
        println!("loadgen: inline chrome trace -> {}", trace_path.display());
    }
    if let (Some(path), Some(samples)) = (&metrics_out, &metric_samples) {
        let keys = [
            "queue_depth",
            "jobs_running",
            "jobs_submitted_total",
            "jobs_completed_total",
            "jobs_failed_total",
            "jobs_cancelled_total",
            "jobs_shed_total",
            "jobs_degraded_total",
            "worker_panics_total",
        ];
        let mut json = String::from("{\n  \"schema\": \"dbscan-loadgen-metrics/v1\",\n");
        json.push_str("  \"poll_interval_ms\": 100,\n");
        json.push_str(&format!("  \"num_samples\": {},\n", samples.len()));
        json.push_str("  \"samples\": [\n");
        for (i, (elapsed_ms, pairs)) in samples.iter().enumerate() {
            let get = |name: &str| {
                let full = format!("dbscan_server_{name}");
                pairs
                    .iter()
                    .find(|(n, _)| *n == full)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0)
            };
            json.push_str(&format!("    {{ \"elapsed_ms\": {elapsed_ms:.1}"));
            for k in keys {
                json.push_str(&format!(", \"{k}\": {}", get(k)));
            }
            json.push_str(&format!(
                " }}{}\n",
                if i + 1 < samples.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).expect("cannot create metrics-out directory");
        }
        std::fs::write(path, json).expect("cannot write metrics time-series");
        println!(
            "loadgen: server metrics time-series ({} samples) -> {}",
            samples.len(),
            path.display()
        );
    }

    // Log2 latency histogram: bucket k holds latencies in (2^(k-1), 2^k] ms.
    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.latency_ms).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let mut buckets: Vec<(u64, u64)> = Vec::new();
    for &ms in &lat {
        let le = (ms.max(1.0).log2().ceil() as u32).min(30);
        let le_ms = 1u64 << le;
        match buckets.last_mut() {
            Some((b, n)) if *b == le_ms => *n += 1,
            _ => buckets.push((le_ms, 1)),
        }
    }
    let quantile = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize];
    std::fs::create_dir_all(&out).expect("cannot create output directory");
    let hist_path = out.join("loadgen_hist.json");
    let mut json = String::from("{\n  \"schema\": \"dbscan-loadgen-hist/v1\",\n");
    json.push_str(&format!("  \"jobs\": {},\n", lat.len()));
    json.push_str(&format!(
        "  \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"max_ms\": {:.3},\n",
        quantile(0.50),
        quantile(0.90),
        lat.last().copied().unwrap_or(0.0)
    ));
    json.push_str("  \"log2_buckets_ms\": [\n");
    for (i, (le_ms, n)) in buckets.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"le_ms\": {le_ms}, \"count\": {n} }}{}\n",
            if i + 1 < buckets.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&hist_path, json).expect("cannot write histogram");
    println!(
        "loadgen: latency p50={:.1}ms p90={:.1}ms max={:.1}ms -> {}",
        quantile(0.50),
        quantile(0.90),
        lat.last().copied().unwrap_or(0.0),
        hist_path.display()
    );

    if all_ok && accounting_ok && metrics_match {
        0
    } else {
        1
    }
}

/// `repro monitor`: polls a live daemon's `timeseries` and `health` verbs,
/// prints a one-line-per-sample terminal dashboard, and writes the collected
/// window to `DIR/monitor.json` (`dbscan-monitor/v1`).
fn monitor(argv: Vec<String>) -> i32 {
    use dbscan_server::json::{obj, Value};
    use dbscan_server::Client;

    let mut socket: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut interval_ms = 500u64;
    let mut samples_wanted = 10usize;
    let mut out = PathBuf::from("results");
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => socket = Some(PathBuf::from(val("--socket"))),
            "--connect" => connect = Some(val("--connect")),
            "--interval-ms" => {
                interval_ms = val("--interval-ms").parse().expect("--interval-ms: integer")
            }
            "--samples" => {
                samples_wanted = val("--samples").parse().expect("--samples: integer")
            }
            "--out" => out = PathBuf::from(val("--out")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro monitor (--socket PATH | --connect HOST:PORT) \
                     [--interval-ms N] [--samples N] [--out DIR]"
                );
                return 0;
            }
            other => {
                eprintln!("monitor: unknown flag '{other}'");
                return 2;
            }
        }
    }
    if socket.is_none() == connect.is_none() {
        eprintln!("monitor: exactly one of --socket or --connect is required");
        return 2;
    }
    let mut client = match (&socket, &connect) {
        (Some(path), _) => Client::connect_unix(path),
        (_, Some(addr)) => Client::connect_tcp(addr),
        _ => unreachable!(),
    }
    .unwrap_or_else(|e| {
        eprintln!("monitor: cannot reach daemon: {e}");
        std::process::exit(1);
    });

    println!(
        "== monitor: {samples_wanted} polls every {interval_ms}ms ==\n\
         {:>10} {:>6} {:>7} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "uptime_ms", "queue", "running", "submitted", "completed", "failed", "thru/s", "cache%"
    );
    let mut collected: Vec<String> = Vec::new();
    let mut last_printed = 0u64;
    for _ in 0..samples_wanted {
        let resp = client
            .call(&obj(vec![("verb", Value::Str("timeseries".to_string()))]))
            .unwrap_or_else(|e| {
                eprintln!("monitor: timeseries call failed: {e}");
                std::process::exit(1);
            });
        if let Some(arr) = resp.get("samples").and_then(Value::as_arr) {
            for s in arr {
                let num = |k: &str| s.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                let uptime = num("uptime_ms") as u64;
                if uptime <= last_printed {
                    continue; // already shown in a previous poll
                }
                last_printed = uptime;
                println!(
                    "{:>10} {:>6} {:>7} {:>9} {:>9} {:>8} {:>9.2} {:>7.0}%",
                    uptime,
                    num("queue_depth") as u64,
                    num("running") as u64,
                    num("submitted") as u64,
                    num("completed") as u64,
                    num("failed") as u64,
                    num("throughput_per_s"),
                    num("cache_hit_rate") * 100.0,
                );
                collected.push(s.to_line());
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }

    // Final health snapshot rides along in the artifact.
    let health = client
        .call(&obj(vec![("verb", Value::Str("health".to_string()))]))
        .unwrap_or_else(|e| {
            eprintln!("monitor: health call failed: {e}");
            std::process::exit(1);
        });
    let stats_line = health
        .get("stats")
        .map(Value::to_line)
        .unwrap_or_else(|| "null".to_string());

    std::fs::create_dir_all(&out).expect("cannot create output directory");
    let path = out.join("monitor.json");
    let mut json = String::from("{\n  \"schema\": \"dbscan-monitor/v1\",\n");
    json.push_str(&format!("  \"poll_interval_ms\": {interval_ms},\n"));
    json.push_str(&format!("  \"num_samples\": {},\n", collected.len()));
    json.push_str("  \"samples\": [\n");
    for (i, line) in collected.iter().enumerate() {
        json.push_str(&format!(
            "    {line}{}\n",
            if i + 1 < collected.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"final_health\": {stats_line}\n}}\n"));
    std::fs::write(&path, json).expect("cannot write monitor artifact");
    println!(
        "monitor: {} samples -> {}",
        collected.len(),
        path.display()
    );
    0
}
