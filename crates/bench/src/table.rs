//! Minimal aligned-text table rendering for the `repro` reports, plus CSV
//! emission so the series can be re-plotted externally.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table: a header row plus data rows of strings.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have as many cells as the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned numeric-looking columns and two-space gutters.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (labels), right-align the rest.
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cells[i], width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cells[i], width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders the table as a JSON array of row objects keyed by the header.
    /// Cells that parse as finite numbers are emitted as JSON numbers
    /// (re-serialized, so "005" becomes 5), everything else as strings.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let cell_json = |cell: &str| -> String {
            match cell.parse::<f64>() {
                Ok(v) if v.is_finite() => format!("{v}"),
                _ => format!("\"{}\"", esc(cell)),
            }
        };
        let mut out = String::from("[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (ci, cell) in row.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", esc(&self.header[ci]), cell_json(cell));
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }

    /// Writes the table as JSON (see [`Table::to_json`]).
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut s = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        s.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            s.push('\n');
        }
        std::fs::write(path, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "n"]);
        t.push_row(vec!["a", "1"]);
        t.push_row(vec!["long-name", "1000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("   1"));
        assert!(lines[3].ends_with("1000"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn json_rendering() {
        let mut t = Table::new(vec!["algorithm", "total_s", "edge_tests"]);
        t.push_row(vec!["OurExact", "0.1234", "42"]);
        t.push_row(vec!["says \"hi\"", "n/a", "0.5"]);
        let j = t.to_json();
        assert!(j.contains("{\"algorithm\":\"OurExact\",\"total_s\":0.1234,\"edge_tests\":42}"));
        // Non-numeric cells become escaped strings.
        assert!(j.contains("\"algorithm\":\"says \\\"hi\\\"\""));
        assert!(j.contains("\"total_s\":\"n/a\""));
        assert!(j.trim_start().starts_with('[') && j.trim_end().ends_with(']'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["x"]);
        t.push_row(vec!["has,comma"]);
        t.push_row(vec!["has\"quote"]);
        let dir = std::env::temp_dir().join(format!("tbl-{}.csv", std::process::id()));
        t.write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
        std::fs::remove_file(&dir).ok();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
