//! Wall-clock measurement with the budget/skip discipline of the paper's
//! evaluation ("if KDD96 and CIT08 do not have results at a value of n, it means
//! that they did not terminate within 12 hours").

use std::time::{Duration, Instant};

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub enum Measurement {
    /// Completed, with its wall-clock duration.
    Done(Duration),
    /// Not attempted because a smaller instance already blew the budget.
    Skipped,
}

impl Measurement {
    /// Seconds, or `None` when skipped.
    pub fn seconds(self) -> Option<f64> {
        match self {
            Measurement::Done(d) => Some(d.as_secs_f64()),
            Measurement::Skipped => None,
        }
    }

    /// Rendering used in the report tables: seconds with 3 decimals, or `-`
    /// (matching the paper's missing data points).
    pub fn display(self) -> String {
        match self {
            Measurement::Done(d) => format!("{:.3}", d.as_secs_f64()),
            Measurement::Skipped => "-".to_string(),
        }
    }
}

/// Tracks, per algorithm, whether the time budget has been exceeded so that
/// subsequent (larger) instances of a sweep are skipped.
pub struct BudgetTracker {
    budget: Duration,
    blown: Vec<bool>,
}

impl BudgetTracker {
    /// A tracker for `algorithms` sweep lanes with the given per-run budget.
    pub fn new(algorithms: usize, budget: Duration) -> Self {
        BudgetTracker {
            budget,
            blown: vec![false; algorithms],
        }
    }

    /// Runs `f` for lane `lane` unless its budget is already blown; records a
    /// blow-out if the run exceeds the budget.
    pub fn run(&mut self, lane: usize, f: impl FnOnce()) -> Measurement {
        if self.blown[lane] {
            return Measurement::Skipped;
        }
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        if elapsed > self.budget {
            self.blown[lane] = true;
        }
        Measurement::Done(elapsed)
    }

    /// Whether lane `lane` may still run.
    pub fn active(&self, lane: usize) -> bool {
        !self.blown[lane]
    }
}

/// Times a single closure (no budget logic).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_display() {
        assert_eq!(Measurement::Skipped.display(), "-");
        let d = Measurement::Done(Duration::from_millis(1234));
        assert_eq!(d.display(), "1.234");
        assert_eq!(d.seconds(), Some(1.234));
        assert_eq!(Measurement::Skipped.seconds(), None);
    }

    #[test]
    fn budget_blowout_skips_next_runs() {
        let mut t = BudgetTracker::new(2, Duration::from_millis(1));
        // Lane 0 blows its 1 ms budget.
        let m = t.run(0, || std::thread::sleep(Duration::from_millis(5)));
        assert!(matches!(m, Measurement::Done(_)));
        assert!(!t.active(0));
        assert!(matches!(t.run(0, || {}), Measurement::Skipped));
        // Lane 1 is unaffected.
        assert!(t.active(1));
        assert!(matches!(t.run(1, || {}), Measurement::Done(_)));
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
