//! Construction of the six experiment datasets of Section 5.1.
//!
//! Synthetic: SS-3D, SS-5D, SS-7D (seed spreader, paper defaults). Real-like:
//! PAMAP2 (4D), Farm (5D), Household (7D) stand-ins (see `dbscan-datagen`).
//! Dimensionality is a compile-time constant throughout the workspace, so the
//! dataset abstraction is an enum of names plus monomorphic constructors; the
//! experiment drivers dispatch on the enum.

use crate::config::DATASET_SEED;
use dbscan_datagen::realworld::{farm_like, household_like, pamap2_like};
use dbscan_datagen::{seed_spreader, SpreaderConfig};
use dbscan_geom::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The six datasets of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatasetKind {
    Ss3d,
    Ss5d,
    Ss7d,
    Pamap2,
    Farm,
    Household,
}

impl DatasetKind {
    /// All datasets, in the paper's presentation order.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Ss3d,
        DatasetKind::Ss5d,
        DatasetKind::Ss7d,
        DatasetKind::Pamap2,
        DatasetKind::Farm,
        DatasetKind::Household,
    ];

    /// The synthetic seed-spreader datasets (used by the Figure 11 n-sweep).
    pub const SYNTHETIC: [DatasetKind; 3] =
        [DatasetKind::Ss3d, DatasetKind::Ss5d, DatasetKind::Ss7d];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Ss3d => "SS3D",
            DatasetKind::Ss5d => "SS5D",
            DatasetKind::Ss7d => "SS7D",
            DatasetKind::Pamap2 => "PAMAP2",
            DatasetKind::Farm => "Farm",
            DatasetKind::Household => "Household",
        }
    }

    /// Dimensionality of the dataset.
    pub fn dim(self) -> usize {
        match self {
            DatasetKind::Ss3d => 3,
            DatasetKind::Pamap2 => 4,
            DatasetKind::Ss5d | DatasetKind::Farm => 5,
            DatasetKind::Ss7d => 7,
            DatasetKind::Household => 7,
        }
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(s: &str) -> Option<DatasetKind> {
        DatasetKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }
}

/// Generates the seed-spreader dataset of dimension `D` with the paper's
/// defaults and the fixed experiment seed.
pub fn spreader_points<const D: usize>(n: usize) -> Vec<Point<D>> {
    let cfg = SpreaderConfig::paper_defaults(n, D);
    let mut rng = StdRng::seed_from_u64(DATASET_SEED ^ (D as u64) ^ (n as u64).rotate_left(17));
    seed_spreader::<D>(&cfg, &mut rng)
}

/// The 2D visualization dataset of Figures 8/9: n points with about 4 restarts.
pub fn viz2d_points(n: usize) -> Vec<Point<2>> {
    let mut cfg = SpreaderConfig::paper_defaults(n, 2);
    cfg.restart_prob = 4.0 / cfg.cluster_points() as f64;
    // The paper's Figure 8 has no background noise visible at n = 1000.
    cfg.noise_fraction = 0.0;
    let mut rng = StdRng::seed_from_u64(DATASET_SEED);
    seed_spreader::<2>(&cfg, &mut rng)
}

/// Real-like dataset constructors.
pub fn pamap2_points(n: usize) -> Vec<Point<4>> {
    pamap2_like(n, DATASET_SEED)
}
pub fn farm_points(n: usize) -> Vec<Point<5>> {
    farm_like(n, DATASET_SEED)
}
pub fn household_points(n: usize) -> Vec<Point<7>> {
    household_like(n, DATASET_SEED)
}

/// Runs `f` with the points of `kind` at cardinality `n`, dispatching on the
/// compile-time dimension. The closure is generic, expressed through the
/// [`WithPoints`] visitor trait (stable Rust has no generic closures).
pub fn with_dataset<V: WithPoints>(kind: DatasetKind, n: usize, visitor: &mut V) {
    match kind {
        DatasetKind::Ss3d => visitor.visit::<3>(&spreader_points::<3>(n)),
        DatasetKind::Ss5d => visitor.visit::<5>(&spreader_points::<5>(n)),
        DatasetKind::Ss7d => visitor.visit::<7>(&spreader_points::<7>(n)),
        DatasetKind::Pamap2 => visitor.visit::<4>(&pamap2_points(n)),
        DatasetKind::Farm => visitor.visit::<5>(&farm_points(n)),
        DatasetKind::Household => visitor.visit::<7>(&household_points(n)),
    }
}

/// Visitor over a point set of any supported dimension.
pub trait WithPoints {
    fn visit<const D: usize>(&mut self, points: &[Point<D>]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in DatasetKind::ALL {
            assert_eq!(DatasetKind::parse(k.name()), Some(k));
            assert_eq!(DatasetKind::parse(&k.name().to_lowercase()), Some(k));
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn dims_match_paper() {
        assert_eq!(DatasetKind::Pamap2.dim(), 4);
        assert_eq!(DatasetKind::Farm.dim(), 5);
        assert_eq!(DatasetKind::Household.dim(), 7);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(spreader_points::<3>(500), spreader_points::<3>(500));
        assert_eq!(viz2d_points(200), viz2d_points(200));
    }

    #[test]
    fn visitor_dispatch_reaches_every_dataset() {
        struct Count {
            seen: Vec<(usize, usize)>,
        }
        impl WithPoints for Count {
            fn visit<const D: usize>(&mut self, points: &[Point<D>]) {
                self.seen.push((D, points.len()));
            }
        }
        let mut v = Count { seen: vec![] };
        for k in DatasetKind::ALL {
            with_dataset(k, 300, &mut v);
        }
        assert_eq!(
            v.seen.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![3, 5, 7, 4, 5, 7]
        );
        assert!(v.seen.iter().all(|&(_, n)| n == 300));
    }
}
