//! Scaling of the multi-threaded variants (`dbscan_core::parallel`) against
//! their sequential counterparts — an extension beyond the paper (its
//! implementation was single-threaded), exercising the observation that all
//! phases except the final union-find are embarrassingly parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_bench::config::{DEFAULT_EPS, DEFAULT_RHO};
use dbscan_bench::datasets::spreader_points;
use dbscan_core::algorithms::{grid_exact, rho_approx};
use dbscan_core::parallel::{grid_exact_par, rho_approx_par};
use dbscan_core::DbscanParams;
use std::hint::black_box;

fn bench_parallel(c: &mut Criterion) {
    let pts = spreader_points::<5>(50_000);
    let params = DbscanParams::new(DEFAULT_EPS, 20).unwrap();

    let mut group = c.benchmark_group("parallel_exact");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(grid_exact(&pts, params)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(grid_exact_par(&pts, params, Some(t))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel_approx");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(rho_approx(&pts, params, DEFAULT_RHO)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| black_box(rho_approx_par(&pts, params, DEFAULT_RHO, Some(t))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
