//! Criterion companion to Figure 12: running time vs radius ε on SS-3D. The
//! exact methods degrade as ε grows (range queries return more points; core
//! cells hold more BCP work), while OurApprox stays flat — the paper's headline
//! efficiency contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_bench::config::DEFAULT_RHO;
use dbscan_bench::datasets::spreader_points;
use dbscan_core::algorithms::{grid_exact, kdd96_rtree, rho_approx};
use dbscan_core::DbscanParams;
use std::hint::black_box;

fn bench_radius(c: &mut Criterion) {
    let pts = spreader_points::<3>(10_000);
    let min_pts = 20;

    let mut group = c.benchmark_group("fig12_ss3d");
    group.sample_size(10);
    for eps in [2_500.0, 5_000.0, 10_000.0, 20_000.0] {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        group.bench_with_input(BenchmarkId::new("OurApprox", eps as u64), &pts, |b, pts| {
            b.iter(|| black_box(rho_approx(pts, params, DEFAULT_RHO)))
        });
        group.bench_with_input(BenchmarkId::new("OurExact", eps as u64), &pts, |b, pts| {
            b.iter(|| black_box(grid_exact(pts, params)))
        });
        group.bench_with_input(BenchmarkId::new("KDD96", eps as u64), &pts, |b, pts| {
            b.iter(|| black_box(kdd96_rtree(pts, params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_radius);
criterion_main!(benches);
