//! Criterion companion to Figure 11: algorithm running time vs cardinality on
//! the 3D/5D seed-spreader data (ε = 5000, ρ = 0.001). Statistical form of the
//! `repro fig11` sweep, restricted to sizes where every algorithm finishes in
//! bench-friendly time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_bench::config::{DEFAULT_EPS, DEFAULT_RHO};
use dbscan_bench::datasets::spreader_points;
use dbscan_core::algorithms::{cit08, grid_exact, kdd96_rtree, rho_approx, Cit08Config};
use dbscan_core::DbscanParams;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let min_pts = 20;
    let params = DbscanParams::new(DEFAULT_EPS, min_pts).unwrap();

    let mut group = c.benchmark_group("fig11_ss3d");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let pts = spreader_points::<3>(n);
        group.bench_with_input(BenchmarkId::new("OurApprox", n), &pts, |b, pts| {
            b.iter(|| black_box(rho_approx(pts, params, DEFAULT_RHO)))
        });
        group.bench_with_input(BenchmarkId::new("OurExact", n), &pts, |b, pts| {
            b.iter(|| black_box(grid_exact(pts, params)))
        });
        group.bench_with_input(BenchmarkId::new("CIT08", n), &pts, |b, pts| {
            b.iter(|| black_box(cit08(pts, params, Cit08Config::default())))
        });
        group.bench_with_input(BenchmarkId::new("KDD96", n), &pts, |b, pts| {
            b.iter(|| black_box(kdd96_rtree(pts, params)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig11_ss5d");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let pts = spreader_points::<5>(n);
        group.bench_with_input(BenchmarkId::new("OurApprox", n), &pts, |b, pts| {
            b.iter(|| black_box(rho_approx(pts, params, DEFAULT_RHO)))
        });
        group.bench_with_input(BenchmarkId::new("OurExact", n), &pts, |b, pts| {
            b.iter(|| black_box(grid_exact(pts, params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
