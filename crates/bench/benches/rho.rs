//! Criterion companion to Figure 13: OurApprox running time as a function of
//! the approximation ratio ρ — larger ρ means a shallower counting hierarchy
//! and earlier "fully inside the inflated ball" exits, hence faster queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_bench::config::DEFAULT_EPS;
use dbscan_bench::datasets::spreader_points;
use dbscan_core::algorithms::rho_approx;
use dbscan_core::DbscanParams;
use std::hint::black_box;

fn bench_rho(c: &mut Criterion) {
    let params = DbscanParams::new(DEFAULT_EPS, 20).unwrap();

    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    let pts3 = spreader_points::<3>(20_000);
    let pts7 = spreader_points::<7>(20_000);
    for rho in [0.001, 0.01, 0.05, 0.1] {
        group.bench_with_input(
            BenchmarkId::new("SS3D", format!("{rho}")),
            &pts3,
            |b, pts| b.iter(|| black_box(rho_approx(pts, params, rho))),
        );
        group.bench_with_input(
            BenchmarkId::new("SS7D", format!("{rho}")),
            &pts7,
            |b, pts| b.iter(|| black_box(rho_approx(pts, params, rho))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rho);
criterion_main!(benches);
