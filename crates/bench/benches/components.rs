//! Component micro-benchmarks and ablations for the design choices called out
//! in DESIGN.md:
//!
//! * index build/query costs (kd-tree vs R-tree vs grid);
//! * the Lemma 5 counter: build cost vs hierarchy depth, query cost;
//! * BCP edge predicate: brute force vs tree probing (the `BRUTE_FORCE_LIMIT`
//!   crossover);
//! * cell-key hashing: FxHash vs SipHash (why `dbscan-geom` ships its own
//!   hasher).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_bench::datasets::spreader_points;
use dbscan_core::bcp;
use dbscan_geom::{CellCoord, FastHashMap, Point};
use dbscan_index::{ApproxRangeCounter, GridIndex, KdTree, RTree, RangeIndex};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_indexes(c: &mut Criterion) {
    let pts = spreader_points::<3>(50_000);
    let queries: Vec<Point<3>> = pts.iter().step_by(500).copied().collect();
    let eps = 5_000.0;

    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("kdtree_50k", |b| b.iter(|| black_box(KdTree::build(&pts))));
    group.bench_function("rtree_50k", |b| b.iter(|| black_box(RTree::build(&pts))));
    group.bench_function("grid_50k", |b| {
        b.iter(|| black_box(GridIndex::build(&pts, eps)))
    });
    group.bench_function("counter_50k_rho0.001", |b| {
        b.iter(|| black_box(ApproxRangeCounter::build(&pts, eps, 0.001)))
    });
    group.finish();

    let kd = KdTree::build(&pts);
    let rt = RTree::build(&pts);
    let counter = ApproxRangeCounter::build(&pts, eps, 0.001);
    let mut group = c.benchmark_group("index_query");
    group.bench_function("kdtree_range", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for q in &queries {
                out.clear();
                kd.range_query(q, eps, &mut out);
                black_box(out.len());
            }
        })
    });
    group.bench_function("rtree_range", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for q in &queries {
                out.clear();
                rt.range_query(q, eps, &mut out);
                black_box(out.len());
            }
        })
    });
    group.bench_function("counter_query", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(counter.query(q));
            }
        })
    });
    group.bench_function("counter_query_positive", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(counter.query_positive(q));
            }
        })
    });
    group.finish();
}

fn bench_bcp_ablation(c: &mut Criterion) {
    // Two adjacent blobs of m core points each, separated by slightly more
    // than the threshold — the worst case for the predicate (no early exit).
    let mut group = c.benchmark_group("bcp_predicate");
    for m in [16usize, 64, 256] {
        let mut pts: Vec<Point<3>> = Vec::new();
        for i in 0..m {
            let t = i as f64;
            pts.push(Point([t * 0.01, 0.0, 0.0]));
        }
        for i in 0..m {
            let t = i as f64;
            pts.push(Point([100.0 + t * 0.01, 0.0, 0.0]));
        }
        let a: Vec<u32> = (0..m as u32).collect();
        let b_ids: Vec<u32> = (m as u32..2 * m as u32).collect();
        let eps = 50.0; // below the 100 gap: full scan, no hit
        group.bench_with_input(BenchmarkId::new("brute", m), &m, |bch, _| {
            bch.iter(|| black_box(bcp::within_threshold_brute(&pts, &a, &b_ids, eps)))
        });
        let tree = KdTree::build_entries(b_ids.iter().map(|&i| (pts[i as usize], i)).collect());
        group.bench_with_input(BenchmarkId::new("tree_probe", m), &m, |bch, _| {
            bch.iter(|| black_box(bcp::within_threshold_tree(&pts, &a, &tree, eps)))
        });
    }
    group.finish();
}

fn bench_hash_ablation(c: &mut Criterion) {
    let coords: Vec<CellCoord<7>> = (0..50_000i64)
        .map(|i| CellCoord([i, i * 7, i % 13, -i, i / 3, i % 101, i * 31]))
        .collect();
    let mut group = c.benchmark_group("cell_hash");
    group.bench_function("fxhash_insert_50k", |b| {
        b.iter(|| {
            let mut m: FastHashMap<CellCoord<7>, u32> = FastHashMap::default();
            for (i, c) in coords.iter().enumerate() {
                m.insert(*c, i as u32);
            }
            black_box(m.len())
        })
    });
    group.bench_function("siphash_insert_50k", |b| {
        b.iter(|| {
            let mut m: HashMap<CellCoord<7>, u32> = HashMap::new();
            for (i, c) in coords.iter().enumerate() {
                m.insert(*c, i as u32);
            }
            black_box(m.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_indexes,
    bench_bcp_ablation,
    bench_hash_ablation
);
criterion_main!(benches);
