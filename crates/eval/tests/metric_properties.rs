//! Property-based tests for the external cluster indices.

use dbscan_core::{Assignment, Clustering};
use dbscan_eval::metrics::{adjusted_rand_index, nmi, rand_index};
use proptest::prelude::*;

/// An arbitrary clustering over n points with up to k clusters; label `k`
/// encodes noise.
fn arb_clustering(n: usize, k: u32) -> impl Strategy<Value = Clustering> {
    prop::collection::vec(0..=k, 1..n).prop_map(move |labels| {
        let assignments: Vec<Assignment> = labels
            .iter()
            .map(|&l| {
                if l == k {
                    Assignment::Noise
                } else {
                    Assignment::Core(l)
                }
            })
            .collect();
        Clustering {
            assignments,
            num_clusters: k as usize,
        }
    })
}

/// Naive O(n²) Rand index as the oracle.
fn rand_naive(a: &Clustering, b: &Clustering) -> f64 {
    let la = a.flat_labels();
    let lb = b.flat_labels();
    let n = la.len();
    if n < 2 {
        return 1.0;
    }
    // Noise = unique singleton labels.
    let key = |l: &Option<u32>, i: usize| l.map_or(usize::MAX - i, |v| v as usize);
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_a = key(&la[i], i) == key(&la[j], j);
            let same_b = key(&lb[i], i) == key(&lb[j], j);
            agree += usize::from(same_a == same_b);
            total += 1;
        }
    }
    agree as f64 / total as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rand_index_matches_naive(
        a in arb_clustering(40, 4),
        b in arb_clustering(40, 4),
    ) {
        if a.len() == b.len() {
            let fast = rand_index(&a, &b);
            let slow = rand_naive(&a, &b);
            prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
        }
    }

    #[test]
    fn indices_are_symmetric_and_bounded(
        a in arb_clustering(30, 3),
        b in arb_clustering(30, 3),
    ) {
        if a.len() == b.len() {
            prop_assert!((rand_index(&a, &b) - rand_index(&b, &a)).abs() < 1e-12);
            prop_assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
            prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
            let r = rand_index(&a, &b);
            prop_assert!((0.0..=1.0).contains(&r));
            prop_assert!(adjusted_rand_index(&a, &b) <= 1.0 + 1e-12);
            let m = nmi(&a, &b);
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn self_comparison_is_perfect(a in arb_clustering(40, 5)) {
        prop_assert_eq!(rand_index(&a, &a), 1.0);
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }
}
