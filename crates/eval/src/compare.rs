//! Cluster-id–invariant comparison of clusterings.
//!
//! Every exact DBSCAN algorithm outputs the same unique set of clusters
//! (Problem 1), but numbers them in whatever order it discovers them. To compare
//! results — and to define Figure 10's "ρ-approximate DBSCAN returns exactly the
//! same clusters as DBSCAN" — cluster ids are canonicalized: each cluster is
//! renamed by the smallest point index among its core points (core points belong
//! to exactly one cluster, so the renaming is well defined).

use dbscan_core::{Assignment, Clustering};

/// Remaps cluster ids so that clusters are numbered by ascending smallest core
/// point index. Returns `None` if some cluster has no core point (impossible for
/// outputs of the algorithms in this workspace; guards foreign inputs).
pub fn canonicalize(c: &Clustering) -> Option<Clustering> {
    let mut rep = vec![u32::MAX; c.num_clusters];
    for (i, a) in c.assignments.iter().enumerate() {
        if let Assignment::Core(cl) = a {
            let slot = &mut rep[*cl as usize];
            if *slot == u32::MAX {
                *slot = i as u32; // assignments scanned in order: first = smallest
            }
        }
    }
    if rep.contains(&u32::MAX) {
        return None;
    }
    // Rank clusters by representative.
    let mut order: Vec<u32> = (0..c.num_clusters as u32).collect();
    order.sort_by_key(|&cl| rep[cl as usize]);
    let mut new_id = vec![0u32; c.num_clusters];
    for (rank, &cl) in order.iter().enumerate() {
        new_id[cl as usize] = rank as u32;
    }

    let assignments = c
        .assignments
        .iter()
        .map(|a| match a {
            Assignment::Core(cl) => Assignment::Core(new_id[*cl as usize]),
            Assignment::Border(cs) => {
                let mut mapped: Vec<u32> = cs.iter().map(|&cl| new_id[cl as usize]).collect();
                mapped.sort_unstable();
                Assignment::Border(mapped)
            }
            Assignment::Noise => Assignment::Noise,
        })
        .collect();
    Some(Clustering {
        assignments,
        num_clusters: c.num_clusters,
    })
}

/// Whether two clusterings are identical up to cluster numbering — including
/// core/border/noise status and full border multi-assignment.
///
/// ```
/// use dbscan_core::{Assignment::*, Clustering};
/// use dbscan_eval::same_clustering;
///
/// let a = Clustering { assignments: vec![Core(0), Core(1), Noise], num_clusters: 2 };
/// let b = Clustering { assignments: vec![Core(1), Core(0), Noise], num_clusters: 2 };
/// assert!(same_clustering(&a, &b)); // ids permuted, same clusters
/// ```
pub fn same_clustering(a: &Clustering, b: &Clustering) -> bool {
    if a.num_clusters != b.num_clusters || a.len() != b.len() {
        return false;
    }
    match (canonicalize(a), canonicalize(b)) {
        (Some(ca), Some(cb)) => ca.assignments == cb.assignments,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(assignments: Vec<Assignment>, k: usize) -> Clustering {
        Clustering {
            assignments,
            num_clusters: k,
        }
    }

    #[test]
    fn permuted_ids_compare_equal() {
        use Assignment::*;
        let a = clustering(vec![Core(0), Core(1), Border(vec![0, 1]), Noise], 2);
        let b = clustering(vec![Core(1), Core(0), Border(vec![0, 1]), Noise], 2);
        assert!(same_clustering(&a, &b));
    }

    #[test]
    fn different_membership_detected() {
        use Assignment::*;
        let a = clustering(vec![Core(0), Core(0)], 1);
        let b = clustering(vec![Core(0), Core(1)], 2);
        assert!(!same_clustering(&a, &b));
    }

    #[test]
    fn border_vs_core_status_matters() {
        use Assignment::*;
        let a = clustering(vec![Core(0), Core(0), Border(vec![0])], 1);
        let b = clustering(vec![Core(0), Core(0), Core(0)], 1);
        assert!(!same_clustering(&a, &b));
    }

    #[test]
    fn border_multiplicity_matters() {
        use Assignment::*;
        let a = clustering(vec![Core(0), Core(1), Border(vec![0])], 2);
        let b = clustering(vec![Core(0), Core(1), Border(vec![0, 1])], 2);
        assert!(!same_clustering(&a, &b));
    }

    #[test]
    fn canonicalize_orders_by_first_core() {
        use Assignment::*;
        let c = clustering(vec![Core(7 - 7), Core(1)], 2); // ids 0,1 in order
        let d = clustering(vec![Core(1), Core(0)], 2); // swapped
        let cc = canonicalize(&c).unwrap();
        let cd = canonicalize(&d).unwrap();
        assert_eq!(cc.assignments, cd.assignments);
        assert_eq!(cc.assignments[0], Core(0));
    }

    #[test]
    fn coreless_cluster_rejected() {
        use Assignment::*;
        let c = clustering(vec![Border(vec![0])], 1);
        assert!(canonicalize(&c).is_none());
        assert!(!same_clustering(&c, &c));
    }

    #[test]
    fn empty_clusterings_equal() {
        let a = Clustering::empty();
        let b = Clustering::empty();
        assert!(same_clustering(&a, &b));
    }
}
