//! The sorted k-dist heuristic for choosing ε — the parameter-selection
//! procedure proposed in the original KDD'96 paper (Section 4.2 there) and
//! presupposed by *DBSCAN Revisited*'s "comfortable range of ε" discussion
//! (its Section 4.2, citing OPTICS).
//!
//! For each point, compute the distance to its k-th nearest neighbor; sort the
//! values in descending order. Cluster points produce a long flat tail, noise
//! points the steep head; ε is read off the "valley" (knee) between them, and
//! `MinPts = k + 1`.

use dbscan_geom::Point;
use dbscan_index::KdTree;

/// The sorted k-dist plot: distance of every point to its `k`-th nearest
/// *other* point (`k ≥ 1`), sorted descending. Points with fewer than `k`
/// other points contribute `f64::INFINITY`.
pub fn sorted_kdist_plot<const D: usize>(points: &[Point<D>], k: usize) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    let tree = KdTree::build(points);
    let mut out: Vec<f64> = points
        .iter()
        .map(|p| {
            // k+1 because the point itself is always its own 0-th neighbor.
            let nn = tree.k_nearest(p, k + 1);
            nn.get(k).map_or(f64::INFINITY, |&(_, d)| d.sqrt())
        })
        .collect();
    out.sort_by(|a, b| b.partial_cmp(a).unwrap());
    out
}

/// A simple knee estimate on the sorted k-dist plot: the value at the point of
/// maximum distance from the chord connecting the curve's endpoints (the
/// standard "kneedle"-style construction). Returns `None` for degenerate
/// plots (fewer than 3 finite values or a flat curve).
pub fn suggest_eps(sorted_kdist: &[f64]) -> Option<f64> {
    let finite: Vec<f64> = sorted_kdist
        .iter()
        .copied()
        .filter(|d| d.is_finite())
        .collect();
    if finite.len() < 3 {
        return None;
    }
    let n = finite.len();
    let (y0, y1) = (finite[0], finite[n - 1]);
    if y0 <= y1 {
        return None; // flat or inverted: no knee
    }
    // Distance of each point from the chord (0, y0) -> (n-1, y1), maximized.
    let dx = (n - 1) as f64;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    let mut best = (0usize, 0.0f64);
    for (i, &y) in finite.iter().enumerate() {
        let d = (dy * i as f64 - dx * (y - y0)).abs() / norm;
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(finite[best.0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn kdist_of_regular_grid() {
        // Unit grid: every interior point's 1-NN distance is exactly 1.
        let mut pts = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                pts.push(p2(x as f64, y as f64));
            }
        }
        let plot = sorted_kdist_plot(&pts, 1);
        assert_eq!(plot.len(), 100);
        assert!(plot.iter().all(|&d| (d - 1.0).abs() < 1e-12));
    }

    #[test]
    fn plot_is_sorted_descending() {
        let pts: Vec<_> = (0..50).map(|i| p2((i * i) as f64 * 0.01, 0.0)).collect();
        let plot = sorted_kdist_plot(&pts, 2);
        assert!(plot.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn too_few_points_give_infinity() {
        let pts = vec![p2(0.0, 0.0), p2(1.0, 0.0)];
        let plot = sorted_kdist_plot(&pts, 3);
        assert!(plot.iter().all(|d| d.is_infinite()));
        assert_eq!(suggest_eps(&plot), None);
    }

    #[test]
    fn knee_separates_cluster_scale_from_noise_scale() {
        // A dense cluster (spacing 0.1) plus scattered far-away noise: the
        // 3-dist of cluster points is ~0.1-0.3, of noise points ~hundreds.
        let mut pts = Vec::new();
        for x in 0..20 {
            for y in 0..20 {
                pts.push(p2(x as f64 * 0.1, y as f64 * 0.1));
            }
        }
        for i in 0..8 {
            pts.push(p2(1_000.0 + i as f64 * 400.0, 1_000.0));
        }
        let plot = sorted_kdist_plot(&pts, 3);
        let eps = suggest_eps(&plot).expect("knee must exist");
        // The knee lands at the cluster scale (the top of the flat tail), far
        // below the noise scale...
        assert!(
            (0.1..900.0).contains(&eps),
            "suggested eps {eps} not usable as a DBSCAN radius"
        );
        // ...and actually works as DBSCAN's ε with MinPts = k + 1: one cluster,
        // the 8 scattered points as noise.
        let params = dbscan_core::DbscanParams::new(eps, 4).unwrap();
        let c = dbscan_core::algorithms::grid_exact(&pts, params);
        assert_eq!(c.num_clusters, 1);
        assert_eq!(c.noise_count(), 8);
    }

    #[test]
    fn flat_plot_has_no_knee() {
        assert_eq!(suggest_eps(&[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(suggest_eps(&[]), None);
    }
}
