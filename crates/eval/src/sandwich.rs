//! A direct checker for the Sandwich Quality Guarantee (Theorem 3).
//!
//! Given the exact clustering at `ε` (`C₁`), an approximate clustering (`C`),
//! and the exact clustering at `ε(1+ρ)` (`C₂`), the theorem asserts:
//!
//! 1. every cluster of `C₁` is contained in some cluster of `C`;
//! 2. every cluster of `C` is contained in some cluster of `C₂`.
//!
//! The checker verifies containment on *core* points (where cluster membership
//! is unique and the theorem's proof operates); border points may legitimately
//! differ in multiplicity between the three runs.

use dbscan_core::{Assignment, Clustering};

/// The outcome of a sandwich check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SandwichOutcome {
    /// Both statements hold.
    Holds,
    /// Statement 1 fails: the pair of points (same `inner` cluster, different
    /// approximate clusters) is a witness.
    Statement1Violated { point_a: u32, point_b: u32 },
    /// Statement 2 fails: the pair of points (same approximate cluster,
    /// different `outer` clusters) is a witness.
    Statement2Violated { point_a: u32, point_b: u32 },
}

/// Checks both statements of Theorem 3 on core points.
///
/// `inner` = exact at ε, `approx` = ρ-approximate at ε, `outer` = exact at
/// ε(1+ρ). All three must cover the same point set.
pub fn check_sandwich(
    inner: &Clustering,
    approx: &Clustering,
    outer: &Clustering,
) -> SandwichOutcome {
    assert_eq!(inner.len(), approx.len());
    assert_eq!(approx.len(), outer.len());

    if let Some(w) = refinement_violation(inner, approx) {
        return SandwichOutcome::Statement1Violated {
            point_a: w.0,
            point_b: w.1,
        };
    }
    if let Some(w) = refinement_violation(approx, outer) {
        return SandwichOutcome::Statement2Violated {
            point_a: w.0,
            point_b: w.1,
        };
    }
    SandwichOutcome::Holds
}

/// Finds a witness pair violating "every cluster of `fine` is contained in a
/// cluster of `coarse`", restricted to points that are core in `fine`.
///
/// Core points of `fine` are also core in `coarse` (the radius only grows), so
/// membership on both sides is unique and containment reduces to: all core
/// points sharing a `fine` cluster share a `coarse` cluster.
fn refinement_violation(fine: &Clustering, coarse: &Clustering) -> Option<(u32, u32)> {
    // For each fine cluster, the coarse cluster of its first core point.
    let mut image = vec![u32::MAX; fine.num_clusters];
    let mut witness = vec![u32::MAX; fine.num_clusters];
    for (i, a) in fine.assignments.iter().enumerate() {
        let Assignment::Core(fc) = a else { continue };
        let coarse_cluster = match &coarse.assignments[i] {
            Assignment::Core(c) => *c,
            // A fine-core point must be coarse-core; treat anything else as a
            // violation witnessed against itself.
            _ => return Some((i as u32, i as u32)),
        };
        let slot = &mut image[*fc as usize];
        if *slot == u32::MAX {
            *slot = coarse_cluster;
            witness[*fc as usize] = i as u32;
        } else if *slot != coarse_cluster {
            return Some((witness[*fc as usize], i as u32));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_core::Assignment::*;

    fn clustering(assignments: Vec<Assignment>, k: usize) -> Clustering {
        Clustering {
            assignments,
            num_clusters: k,
        }
    }

    #[test]
    fn identical_clusterings_hold() {
        let c = clustering(vec![Core(0), Core(0), Core(1), Noise], 2);
        assert_eq!(check_sandwich(&c, &c, &c), SandwichOutcome::Holds);
    }

    #[test]
    fn legal_merge_holds() {
        // Approx merges inner's two clusters; outer also merged. Legal.
        let inner = clustering(vec![Core(0), Core(1)], 2);
        let approx = clustering(vec![Core(0), Core(0)], 1);
        let outer = clustering(vec![Core(0), Core(0)], 1);
        assert_eq!(
            check_sandwich(&inner, &approx, &outer),
            SandwichOutcome::Holds
        );
    }

    #[test]
    fn split_violates_statement_1() {
        // Approx splits an inner cluster: forbidden.
        let inner = clustering(vec![Core(0), Core(0)], 1);
        let approx = clustering(vec![Core(0), Core(1)], 2);
        let outer = clustering(vec![Core(0), Core(0)], 1);
        assert_eq!(
            check_sandwich(&inner, &approx, &outer),
            SandwichOutcome::Statement1Violated {
                point_a: 0,
                point_b: 1
            }
        );
    }

    #[test]
    fn over_merge_violates_statement_2() {
        // Approx merges clusters that remain separate even at ε(1+ρ): forbidden.
        let inner = clustering(vec![Core(0), Core(1)], 2);
        let approx = clustering(vec![Core(0), Core(0)], 1);
        let outer = clustering(vec![Core(0), Core(1)], 2);
        assert_eq!(
            check_sandwich(&inner, &approx, &outer),
            SandwichOutcome::Statement2Violated {
                point_a: 0,
                point_b: 1
            }
        );
    }

    #[test]
    fn lost_core_status_is_a_violation() {
        let inner = clustering(vec![Core(0)], 1);
        let approx = clustering(vec![Noise], 0);
        let outer = clustering(vec![Core(0)], 1);
        assert!(matches!(
            check_sandwich(&inner, &approx, &outer),
            SandwichOutcome::Statement1Violated { .. }
        ));
    }
}
