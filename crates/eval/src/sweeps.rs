//! The two parameter searches of Section 5: **maximum legal ρ** (Figure 10) and
//! the **collapsing radius** that upper-bounds every ε sweep (Section 5.1).

use crate::compare::same_clustering;
use dbscan_core::algorithms::{grid_exact, rho_approx};
use dbscan_core::DbscanParams;
use dbscan_geom::Point;

/// The ρ grid of Table 1: `{0.001, 0.01, 0.02, ..., 0.1}`.
pub const PAPER_RHO_GRID: [f64; 11] = [
    0.001, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1,
];

/// The *maximum legal ρ at ε* (Section 5.2): the largest ρ in `grid` for which
/// ρ-approximate DBSCAN returns exactly the same clusters as exact DBSCAN.
/// Returns `None` if even the smallest grid value differs.
///
/// The grid is scanned from the largest value down, matching the paper's
/// definition as a maximum (the property is not necessarily monotone in ρ).
pub fn max_legal_rho<const D: usize>(
    points: &[Point<D>],
    params: DbscanParams,
    grid: &[f64],
) -> Option<f64> {
    let exact = grid_exact(points, params);
    let mut sorted: Vec<f64> = grid.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for &rho in &sorted {
        let approx = rho_approx(points, params, rho);
        if same_clustering(&exact, &approx) {
            return Some(rho);
        }
    }
    None
}

/// The *collapsing radius* of a dataset (Section 5.1): the smallest ε at which
/// exact DBSCAN returns a single cluster. Found by doubling from `lo` and then
/// bisecting to relative tolerance `rel_tol`.
///
/// The number of clusters is not strictly monotone in ε, so like any practical
/// search this locates *a* boundary point of the collapsed region; for the
/// experiment sweeps (which only need a sensible upper end for ε) that is
/// exactly what the paper uses it for.
pub fn collapsing_radius<const D: usize>(
    points: &[Point<D>],
    min_pts: usize,
    lo: f64,
    rel_tol: f64,
) -> f64 {
    assert!(lo > 0.0 && rel_tol > 0.0);
    let collapsed = |eps: f64| -> bool {
        let params = DbscanParams::new(eps, min_pts).expect("valid eps");
        grid_exact(points, params).num_clusters == 1
    };
    let mut lo = lo;
    let mut hi = lo;
    // Grow until collapsed (or give up at an absurd radius).
    while !collapsed(hi) {
        hi *= 2.0;
        if hi > 1e12 {
            return hi; // degenerate dataset (e.g. fewer than MinPts points)
        }
    }
    if hi == lo {
        // Already collapsed at the starting radius: shrink to bracket below.
        while collapsed(lo) && lo > 1e-9 {
            lo /= 2.0;
        }
    }
    while hi / lo > 1.0 + rel_tol {
        let mid = (lo * hi).sqrt();
        if collapsed(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn two_blobs(gap: f64) -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(p2((i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3));
            pts.push(p2(gap + (i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3));
        }
        pts
    }

    #[test]
    fn max_legal_rho_high_when_well_separated() {
        // Blobs 100 apart, ε = 1: even ρ = 0.1 cannot bridge them.
        let pts = two_blobs(100.0);
        let params = DbscanParams::new(1.0, 4).unwrap();
        assert_eq!(max_legal_rho(&pts, params, &PAPER_RHO_GRID), Some(0.1));
    }

    #[test]
    fn max_legal_rho_matches_direct_scan() {
        // Contract test near an unstable ε: two single-file blobs separated by
        // 1.96 with ε = 1.95. For ρ ≥ 0.006 the bridging pair falls in the
        // approximate algorithm's "don't care" band, so which grid values
        // compare equal is implementation-defined — but max_legal_rho must
        // always return the largest grid value that does compare equal.
        let mut pts: Vec<Point<2>> = (0..10).map(|i| p2(i as f64 * 0.5, 0.0)).collect();
        pts.extend((0..10).map(|i| p2(4.5 + 1.96 + i as f64 * 0.5, 0.0)));
        let params = DbscanParams::new(1.95, 3).unwrap();
        let exact = grid_exact(&pts, params);
        assert_eq!(exact.num_clusters, 2);

        let direct: Option<f64> = PAPER_RHO_GRID
            .iter()
            .copied()
            .filter(|&rho| same_clustering(&exact, &rho_approx(&pts, params, rho)))
            .fold(None, |acc, rho| Some(acc.map_or(rho, |a: f64| a.max(rho))));
        assert_eq!(max_legal_rho(&pts, params, &PAPER_RHO_GRID), direct);
        // ρ = 0.001 keeps ε(1+ρ) = 1.952 < 1.96, so at least that value is legal.
        assert!(direct.is_some());
    }

    #[test]
    fn collapsing_radius_brackets_blob_gap() {
        // Single-file points 1 apart in two groups separated by 10: collapse
        // happens exactly when ε reaches 10.
        let mut pts: Vec<Point<2>> = (0..5).map(|i| p2(i as f64, 0.0)).collect();
        pts.extend((0..5).map(|i| p2(14.0 + i as f64, 0.0)));
        let r = collapsing_radius(&pts, 2, 0.5, 0.01);
        assert!((9.0..=11.0).contains(&r), "collapse radius {r}");
    }

    #[test]
    fn collapsing_radius_handles_already_collapsed_start() {
        let pts: Vec<Point<2>> = (0..10).map(|i| p2(i as f64 * 0.1, 0.0)).collect();
        let r = collapsing_radius(&pts, 2, 100.0, 0.01);
        assert!(r <= 100.0);
        assert!(
            r > 0.05,
            "radius {r} must stay above the point spacing scale"
        );
    }
}
