//! Evaluation machinery for the *DBSCAN Revisited* experiments.
//!
//! * [`compare`] — cluster-id–invariant equality of clusterings (the notion of
//!   "returns exactly the same clusters as DBSCAN" behind Figures 9 and 10);
//! * [`metrics`] — external cluster-agreement indices (Rand, adjusted Rand,
//!   normalized mutual information) for graded comparisons;
//! * [`sweeps`] — the *maximum legal ρ* sweep of Figure 10 and the *collapsing
//!   radius* that bounds every ε sweep in Section 5;
//! * [`sandwich`] — a direct checker for both statements of Theorem 3.

pub mod compare;
pub mod kdist;
pub mod metrics;
pub mod sandwich;
pub mod sweeps;

pub use compare::{canonicalize, same_clustering};
pub use sweeps::{collapsing_radius, max_legal_rho, PAPER_RHO_GRID};
