//! External cluster-agreement indices: Rand, adjusted Rand (ARI), and
//! normalized mutual information (NMI).
//!
//! The paper's quality evaluation is binary ("exactly the same clusters"); these
//! graded indices supplement it, quantifying *how far* an approximate result is
//! from exact when ρ exceeds the maximum legal value. All indices operate on the
//! single-label view ([`Clustering::flat_labels`]); each noise point is treated
//! as its own singleton cluster, the standard convention.

use dbscan_core::Clustering;
use dbscan_geom::FastHashMap;

/// Contingency table between two labelings over the same points.
struct Contingency {
    /// joint counts n_ij
    joint: FastHashMap<(u32, u32), u64>,
    /// row sums a_i
    rows: FastHashMap<u32, u64>,
    /// column sums b_j
    cols: FastHashMap<u32, u64>,
    n: u64,
}

fn labels_with_noise_singletons(c: &Clustering) -> Vec<u32> {
    let mut next = c.num_clusters as u32;
    c.flat_labels()
        .into_iter()
        .map(|l| {
            l.unwrap_or_else(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

impl Contingency {
    fn build(a: &Clustering, b: &Clustering) -> Self {
        assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
        let la = labels_with_noise_singletons(a);
        let lb = labels_with_noise_singletons(b);
        let mut joint: FastHashMap<(u32, u32), u64> = FastHashMap::default();
        let mut rows: FastHashMap<u32, u64> = FastHashMap::default();
        let mut cols: FastHashMap<u32, u64> = FastHashMap::default();
        for (&x, &y) in la.iter().zip(&lb) {
            *joint.entry((x, y)).or_insert(0) += 1;
            *rows.entry(x).or_insert(0) += 1;
            *cols.entry(y).or_insert(0) += 1;
        }
        Contingency {
            joint,
            rows,
            cols,
            n: la.len() as u64,
        }
    }
}

fn choose2(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// The Rand index in `[0, 1]`: fraction of point pairs on which the two
/// clusterings agree (same-same or different-different).
pub fn rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let t = Contingency::build(a, b);
    if t.n < 2 {
        return 1.0;
    }
    let total = choose2(t.n);
    let sum_joint: f64 = t.joint.values().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = t.rows.values().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = t.cols.values().map(|&v| choose2(v)).sum();
    // agreements = pairs together in both + pairs separated in both
    let together_both = sum_joint;
    let separated_both = total - sum_rows - sum_cols + sum_joint;
    (together_both + separated_both) / total
}

/// The adjusted Rand index (chance-corrected; 1 = identical, ~0 = random).
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    let t = Contingency::build(a, b);
    if t.n < 2 {
        return 1.0;
    }
    let total = choose2(t.n);
    let sum_joint: f64 = t.joint.values().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = t.rows.values().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = t.cols.values().map(|&v| choose2(v)).sum();
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // both trivial (e.g. all singletons): define as perfect match
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Normalized mutual information with arithmetic-mean normalization, in `[0, 1]`.
pub fn nmi(a: &Clustering, b: &Clustering) -> f64 {
    let t = Contingency::build(a, b);
    if t.n == 0 {
        return 1.0;
    }
    let n = t.n as f64;
    let mut mi = 0.0;
    for (&(x, y), &nij) in &t.joint {
        let pij = nij as f64 / n;
        let pi = t.rows[&x] as f64 / n;
        let pj = t.cols[&y] as f64 / n;
        mi += pij * (pij / (pi * pj)).ln();
    }
    let h = |m: &FastHashMap<u32, u64>| -> f64 {
        m.values()
            .map(|&v| {
                let p = v as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (h(&t.rows), h(&t.cols));
    if ha + hb < 1e-12 {
        return 1.0; // both single-cluster labelings
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_core::Assignment::{self, *};

    fn clustering(assignments: Vec<Assignment>, k: usize) -> Clustering {
        Clustering {
            assignments,
            num_clusters: k,
        }
    }

    #[test]
    fn identical_clusterings_score_one() {
        let a = clustering(vec![Core(0), Core(0), Core(1), Noise], 2);
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_ids_score_one() {
        let a = clustering(vec![Core(0), Core(0), Core(1), Core(1)], 2);
        let b = clustering(vec![Core(1), Core(1), Core(0), Core(0)], 2);
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rand_index_hand_computed() {
        // a: {0,1},{2}; b: {0},{1,2} over 3 points.
        // Pairs: (0,1) together-a/split-b, (0,2) split/split agree,
        // (1,2) split-a/together-b. 1 agreement of 3 pairs.
        let a = clustering(vec![Core(0), Core(0), Core(1)], 2);
        let b = clustering(vec![Core(0), Core(1), Core(1)], 2);
        assert!((rand_index(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ari_penalizes_chance_agreement() {
        let a = clustering(vec![Core(0), Core(0), Core(1), Core(1)], 2);
        let b = clustering(vec![Core(0), Core(1), Core(0), Core(1)], 2);
        // Perfectly "orthogonal" split: ARI should be at or below 0.
        assert!(adjusted_rand_index(&a, &b) <= 0.0);
        assert!(rand_index(&a, &b) < 1.0);
    }

    #[test]
    fn noise_treated_as_singletons() {
        // Two all-noise labelings agree perfectly (all pairs separated).
        let a = clustering(vec![Noise, Noise, Noise], 0);
        let b = clustering(vec![Noise, Noise, Noise], 0);
        assert_eq!(rand_index(&a, &b), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
    }

    #[test]
    fn noise_vs_cluster_disagrees() {
        let a = clustering(vec![Core(0), Core(0)], 1);
        let b = clustering(vec![Noise, Noise], 0);
        assert_eq!(rand_index(&a, &b), 0.0);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let e = Clustering::empty();
        assert_eq!(rand_index(&e, &e), 1.0);
        let s = clustering(vec![Core(0)], 1);
        assert_eq!(rand_index(&s, &s), 1.0);
        assert_eq!(adjusted_rand_index(&s, &s), 1.0);
        assert_eq!(nmi(&e, &e), 1.0);
    }

    #[test]
    fn nmi_between_zero_and_one() {
        let a = clustering(vec![Core(0), Core(0), Core(1), Core(1), Noise], 2);
        let b = clustering(vec![Core(0), Core(1), Core(1), Core(0), Core(0)], 2);
        let v = nmi(&a, &b);
        assert!((0.0..=1.0).contains(&v), "nmi = {v}");
    }
}
