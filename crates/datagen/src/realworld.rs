//! Simulated stand-ins for the paper's three real datasets.
//!
//! The experiments of Section 5 use PAMAP2 (4D PCA of an activity-monitoring
//! database, n = 3,850,505), Farm (5D VZ-features of a satellite image,
//! n = 3,627,086) and Household (7D UCI electricity data, n = 2,049,280). Those
//! files are not redistributable and this environment has no network access, so
//! each is replaced by a generator that reproduces the *structural* properties
//! the experiments depend on (DESIGN.md, substitutions): naturally clustered
//! point sets of the right dimensionality in the normalized domain `[0, 10^5]^d`,
//! with cluster shapes unlike the isotropic seed-spreader blobs:
//!
//! * [`pamap2_like`] (4D) — a few dozen anisotropic "activity modes" connected by
//!   transition paths (a person moves between activities);
//! * [`farm_like`] (5D) — a handful of large, smooth "land-cover" regions with
//!   gradual color gradients, as VZ features of a segmented image produce;
//! * [`household_like`] (7D) — points on a low-dimensional latent manifold
//!   (3 latent factors linearly embedded into 7 observed attributes), matching
//!   the strong attribute correlation of metering data.

use crate::randutil::{clamp_to_domain, gaussian, uniform_in_domain};
use crate::spreader::{seed_spreader, SpreaderConfig};
use dbscan_geom::{Point, PAPER_DOMAIN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 4D activity-monitoring stand-in: anisotropic modes + transition paths + noise.
pub fn pamap2_like(n: usize, seed: u64) -> Vec<Point<4>> {
    const D: usize = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let num_modes = 18usize; // PAMAP2 has 18 annotated activities
    let modes: Vec<(Point<D>, [f64; D])> = (0..num_modes)
        .map(|_| {
            let center = uniform_in_domain::<D>(PAPER_DOMAIN, &mut rng);
            let mut scales = [0.0; D];
            for s in scales.iter_mut() {
                // Anisotropy: per-axis std between 40 and 400 domain units.
                *s = 40.0 * 10f64.powf(rng.gen::<f64>());
            }
            (center, scales)
        })
        .collect();

    let noise = n / 5_000;
    let transitions = n / 20;
    let mode_pts = n - noise - transitions;

    let mut out = Vec::with_capacity(n);
    for _ in 0..mode_pts {
        let (center, scales) = &modes[rng.gen_range(0..num_modes)];
        let mut p = *center;
        for i in 0..D {
            p[i] += gaussian(&mut rng) * scales[i];
        }
        clamp_to_domain(&mut p, PAPER_DOMAIN);
        out.push(p);
    }
    // Transition paths: linear interpolations between random mode pairs, with
    // jitter — the sparse "bridges" that make ε selection interesting.
    for _ in 0..transitions {
        let (a, _) = &modes[rng.gen_range(0..num_modes)];
        let (b, _) = &modes[rng.gen_range(0..num_modes)];
        let t: f64 = rng.gen();
        let mut p = Point::ORIGIN;
        for i in 0..D {
            p[i] = a[i] + t * (b[i] - a[i]) + gaussian(&mut rng) * 60.0;
        }
        clamp_to_domain(&mut p, PAPER_DOMAIN);
        out.push(p);
    }
    for _ in 0..noise {
        out.push(uniform_in_domain(PAPER_DOMAIN, &mut rng));
    }
    out
}

/// 5D satellite-image VZ-feature stand-in: few large smooth regions. Implemented
/// as a seed spreader with a long dwell time and short shifts (smooth texture
/// drift), plus gradient points between region pairs.
pub fn farm_like(n: usize, seed: u64) -> Vec<Point<5>> {
    const D: usize = 5;
    let mut rng = StdRng::seed_from_u64(seed);
    let gradients = n / 50;
    let body = n - gradients;
    let steps = body as f64;
    let cfg = SpreaderConfig {
        n: body,
        restart_prob: 6.0 / steps, // ≈ 6 land-cover regions
        noise_fraction: 2e-4,
        counter_reset: 400, // long dwell: big smooth regions
        shift_radius: 80.0, // small drift
        vicinity_radius: 140.0,
        domain: PAPER_DOMAIN,
    };
    let mut out = seed_spreader::<D>(&cfg, &mut rng);

    // Gradual transitions between touching regions (image edges are blurry).
    let anchors: Vec<Point<D>> = (0..8).map(|_| out[rng.gen_range(0..body / 2)]).collect();
    for _ in 0..gradients {
        let a = &anchors[rng.gen_range(0..anchors.len())];
        let b = &anchors[rng.gen_range(0..anchors.len())];
        let t: f64 = rng.gen();
        let mut p = Point::ORIGIN;
        for i in 0..D {
            p[i] = a[i] + t * (b[i] - a[i]) + gaussian(&mut rng) * 30.0;
        }
        clamp_to_domain(&mut p, PAPER_DOMAIN);
        out.push(p);
    }
    out
}

/// 7D household-electricity stand-in: a 3-factor latent structure linearly
/// embedded into 7 attributes, plus measurement noise — the kind of strongly
/// correlated data the UCI Household database contains.
pub fn household_like(n: usize, seed: u64) -> Vec<Point<7>> {
    const D: usize = 7;
    const LATENT: usize = 3;
    let mut rng = StdRng::seed_from_u64(seed);

    // Latent trajectory: seed spreader in 3D (daily regimes = clusters).
    let cfg = SpreaderConfig {
        restart_prob: 12.0 / n as f64,
        ..SpreaderConfig::paper_defaults(n, LATENT)
    };
    let latent = seed_spreader::<LATENT>(&cfg, &mut rng);

    // Random full-rank-ish embedding LATENT → D, fixed per dataset.
    let mut embed = [[0.0f64; LATENT]; D];
    for row in embed.iter_mut() {
        for v in row.iter_mut() {
            *v = gaussian(&mut rng) * 0.6;
        }
        // Keep a dominant diagonal-ish component so the embedding is not
        // degenerate and the image spans the domain.
        row[rng.gen_range(0..LATENT)] += 1.0;
    }

    latent
        .into_iter()
        .map(|z| {
            let mut p = Point::<D>::ORIGIN;
            for i in 0..D {
                let mut v = 0.0;
                for (j, &zj) in z.coords().iter().enumerate() {
                    v += embed[i][j] * zj;
                }
                // Center the embedding in the domain and add sensor noise.
                p[i] = 0.25 * PAPER_DOMAIN + 0.5 * v.abs() + gaussian(&mut rng) * 25.0;
            }
            clamp_to_domain(&mut p, PAPER_DOMAIN);
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_domains() {
        let a = pamap2_like(5_000, 1);
        let b = farm_like(5_000, 2);
        let c = household_like(5_000, 3);
        assert_eq!(a.len(), 5_000);
        assert_eq!(b.len(), 5_000);
        assert_eq!(c.len(), 5_000);
        for p in &a {
            assert!(p
                .coords()
                .iter()
                .all(|&x| (0.0..=PAPER_DOMAIN).contains(&x)));
        }
        for p in &c {
            assert!(p
                .coords()
                .iter()
                .all(|&x| (0.0..=PAPER_DOMAIN).contains(&x)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(pamap2_like(1_000, 9), pamap2_like(1_000, 9));
        assert_ne!(pamap2_like(1_000, 9), pamap2_like(1_000, 10));
        assert_eq!(farm_like(1_000, 9), farm_like(1_000, 9));
        assert_eq!(household_like(1_000, 9), household_like(1_000, 9));
    }

    #[test]
    fn household_attributes_are_correlated() {
        // The embedding forces |corr| well above an independent baseline for at
        // least one attribute pair.
        let pts = household_like(4_000, 5);
        let n = pts.len() as f64;
        let mut best: f64 = 0.0;
        for i in 0..7 {
            for j in (i + 1)..7 {
                let (mut si, mut sj, mut sii, mut sjj, mut sij) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for p in &pts {
                    si += p[i];
                    sj += p[j];
                    sii += p[i] * p[i];
                    sjj += p[j] * p[j];
                    sij += p[i] * p[j];
                }
                let cov = sij / n - si / n * (sj / n);
                let vi = sii / n - (si / n) * (si / n);
                let vj = sjj / n - (sj / n) * (sj / n);
                let corr = cov / (vi.sqrt() * vj.sqrt());
                best = best.max(corr.abs());
            }
        }
        assert!(
            best > 0.4,
            "max |corr| = {best}, expected strong correlation"
        );
    }
}
