//! Small sampling utilities shared by the generators.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so the
//! handful of distributions the generators need (isotropic directions, uniform
//! points in a ball, gaussians) are implemented here directly.

use dbscan_geom::Point;
use rand::Rng;

/// A standard normal sample via the Box–Muller transform.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A uniformly random unit vector in `D` dimensions (normalized gaussian).
pub fn unit_vector<const D: usize>(rng: &mut impl Rng) -> [f64; D] {
    loop {
        let mut v = [0.0; D];
        let mut norm_sq = 0.0;
        for c in v.iter_mut() {
            *c = gaussian(rng);
            norm_sq += *c * *c;
        }
        if norm_sq > 1e-12 {
            let norm = norm_sq.sqrt();
            for c in v.iter_mut() {
                *c /= norm;
            }
            return v;
        }
    }
}

/// A point uniformly distributed in the closed ball `B(center, radius)`:
/// uniform direction with radius `R·u^{1/D}`.
pub fn uniform_in_ball<const D: usize>(
    center: &Point<D>,
    radius: f64,
    rng: &mut impl Rng,
) -> Point<D> {
    let dir = unit_vector::<D>(rng);
    let r = radius * rng.gen::<f64>().powf(1.0 / D as f64);
    let mut coords = *center.coords();
    for i in 0..D {
        coords[i] += dir[i] * r;
    }
    Point(coords)
}

/// A point uniform in the cube `[0, domain]^D`.
pub fn uniform_in_domain<const D: usize>(domain: f64, rng: &mut impl Rng) -> Point<D> {
    let mut coords = [0.0; D];
    for c in coords.iter_mut() {
        *c = rng.gen::<f64>() * domain;
    }
    Point(coords)
}

/// Clamps every coordinate into `[0, domain]`.
pub fn clamp_to_domain<const D: usize>(p: &mut Point<D>, domain: f64) {
    for i in 0..D {
        p[i] = p[i].clamp(0.0, domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn unit_vectors_have_unit_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = unit_vector::<5>(&mut rng);
            let norm: f64 = v.iter().map(|c| c * c).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ball_samples_stay_in_ball() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = Point([10.0, -5.0, 0.0]);
        for _ in 0..500 {
            let p = uniform_in_ball(&c, 2.5, &mut rng);
            assert!(p.dist(&c) <= 2.5 + 1e-9);
        }
    }

    #[test]
    fn ball_samples_are_not_degenerate() {
        // Radial CDF check: for uniform-in-ball in 3D, P(r < R/2) = 1/8.
        let mut rng = StdRng::seed_from_u64(4);
        let c = Point([0.0, 0.0, 0.0]);
        let n = 20_000;
        let inside = (0..n)
            .filter(|_| uniform_in_ball(&c, 1.0, &mut rng).dist(&c) < 0.5)
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn domain_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let p = uniform_in_domain::<4>(100.0, &mut rng);
            assert!(p.coords().iter().all(|&c| (0.0..=100.0).contains(&c)));
        }
    }

    #[test]
    fn clamp_clamps() {
        let mut p = Point([-5.0, 50.0, 150.0]);
        clamp_to_domain(&mut p, 100.0);
        assert_eq!(p.coords(), &[0.0, 50.0, 100.0]);
    }
}
