//! Hand-built 2D scenes with ground-truth labels, used by the Figure 1
//! comparison (`repro fig1` and `examples/arbitrary_shapes.rs`).

use dbscan_geom::Point;
use rand::Rng;
use std::f64::consts::PI;

fn jitter<R: Rng>(rng: &mut R) -> f64 {
    rng.gen_range(-0.06..0.06)
}

/// The classic "arbitrary shapes" scene: two interleaved moons plus two
/// concentric rings, with per-point ground-truth labels (0..3).
///
/// DBSCAN recovers all four shapes; k-means cannot — the motivating contrast
/// of the paper's Figure 1.
pub fn moons_and_rings<R: Rng>(rng: &mut R) -> (Vec<Point<2>>, Vec<u32>) {
    let mut pts = Vec::with_capacity(2 * 500 + 2 * 600);
    let mut truth = Vec::with_capacity(2 * 500 + 2 * 600);

    for i in 0..500 {
        let t = PI * i as f64 / 500.0;
        // Moon A (upper) and moon B (lower, shifted) — the interleaved pair.
        pts.push(Point([t.cos() + jitter(rng), t.sin() + jitter(rng)]));
        truth.push(0);
        pts.push(Point([
            1.0 - t.cos() + jitter(rng),
            0.5 - t.sin() + jitter(rng),
        ]));
        truth.push(1);
    }
    for i in 0..600 {
        let t = 2.0 * PI * i as f64 / 600.0;
        // Rings centered at (6, 0): radii 1.5 and 0.6.
        pts.push(Point([
            6.0 + 1.5 * t.cos() + jitter(rng),
            1.5 * t.sin() + jitter(rng),
        ]));
        truth.push(2);
        pts.push(Point([
            6.0 + 0.6 * t.cos() + jitter(rng),
            0.6 * t.sin() + jitter(rng),
        ]));
        truth.push(3);
    }
    (pts, truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scene_shape_and_labels() {
        let (pts, truth) = moons_and_rings(&mut StdRng::seed_from_u64(1));
        assert_eq!(pts.len(), 2 * 500 + 2 * 600);
        assert_eq!(pts.len(), truth.len());
        for k in 0..4u32 {
            assert!(truth.contains(&k), "label {k} missing");
        }
        assert!(pts.iter().all(Point::is_finite));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = moons_and_rings(&mut StdRng::seed_from_u64(5));
        let b = moons_and_rings(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
