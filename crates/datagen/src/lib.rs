//! Dataset generation for the *DBSCAN Revisited* experiments.
//!
//! * [`spreader`] — the **seed spreader** of Section 5.1: a restart random walk
//!   that "spits out" points around its current location, producing arbitrarily
//!   shaped dense clusters plus uniform background noise (Figure 8);
//! * [`realworld`] — synthetic stand-ins for the paper's three real datasets
//!   (PAMAP2, Farm, Household), matching their dimensionality and structural
//!   character (see DESIGN.md for the substitution rationale);
//! * [`io`] — plain CSV reading/writing for points, so generated datasets can be
//!   persisted and plotted externally.

pub mod io;
pub mod randutil;
pub mod realworld;
pub mod scenes;
pub mod spreader;

pub use spreader::{seed_spreader, SpreaderConfig};
