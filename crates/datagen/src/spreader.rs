//! The **seed spreader** generator of Section 5.1.
//!
//! "A synthetic dataset was generated in a 'random walk with restart' fashion":
//! a spreader moves through `[0, 10^5]^d` emitting points uniformly in a
//! radius-100 ball around its location. A local counter (reset value
//! `c_reset = 100`) triggers a shift of length `r_shift = 50d` in a random
//! direction whenever it reaches zero; with probability `ρ_restart` a step
//! instead jumps to a fresh uniform location (starting a new cluster). The first
//! step forces a restart. After `n(1-ρ_noise)` steps, `n·ρ_noise` uniform noise
//! points are appended.

use crate::randutil::{clamp_to_domain, uniform_in_ball, uniform_in_domain, unit_vector};
use dbscan_geom::{Point, PAPER_DOMAIN};
use rand::Rng;

/// Parameters of the seed spreader. [`SpreaderConfig::paper_defaults`] reproduces
/// the values used throughout the paper's experiments.
#[derive(Clone, Copy, Debug)]
pub struct SpreaderConfig {
    /// Total number of points, including noise.
    pub n: usize,
    /// Restart probability `ρ_restart` per step.
    pub restart_prob: f64,
    /// Noise fraction `ρ_noise` (uniform points appended at the end).
    pub noise_fraction: f64,
    /// Steps between shifts, `c_reset`.
    pub counter_reset: u32,
    /// Shift distance `r_shift`.
    pub shift_radius: f64,
    /// Radius of the emission ball around the spreader (100 in the paper).
    pub vicinity_radius: f64,
    /// Side length of the data domain (`10^5` in the paper).
    pub domain: f64,
}

impl SpreaderConfig {
    /// The paper's defaults for dimensionality `d`: `c_reset = 100`,
    /// `r_shift = 50d`, `ρ_noise = 10^-4`, and `ρ_restart = 10/(n(1-ρ_noise))`
    /// so that about 10 restarts (≈ 10 clusters) occur in expectation.
    pub fn paper_defaults(n: usize, d: usize) -> Self {
        let noise_fraction = 1e-4;
        let steps = (n as f64) * (1.0 - noise_fraction);
        SpreaderConfig {
            n,
            restart_prob: 10.0 / steps.max(1.0),
            noise_fraction,
            counter_reset: 100,
            shift_radius: 50.0 * d as f64,
            vicinity_radius: 100.0,
            domain: PAPER_DOMAIN,
        }
    }

    /// Number of cluster (non-noise) points.
    pub fn cluster_points(&self) -> usize {
        ((self.n as f64) * (1.0 - self.noise_fraction)).round() as usize
    }

    /// Number of uniform noise points.
    pub fn noise_points(&self) -> usize {
        self.n - self.cluster_points()
    }
}

/// Runs the seed spreader and returns `cfg.n` points (cluster points first, then
/// noise points).
pub fn seed_spreader<const D: usize>(cfg: &SpreaderConfig, rng: &mut impl Rng) -> Vec<Point<D>> {
    assert!(cfg.domain > 0.0 && cfg.vicinity_radius > 0.0);
    assert!((0.0..=1.0).contains(&cfg.restart_prob));
    assert!((0.0..1.0).contains(&cfg.noise_fraction));

    let mut out = Vec::with_capacity(cfg.n);
    let mut location: Point<D> = Point::ORIGIN;
    let mut counter = 0u32;
    let steps = cfg.cluster_points();

    for step in 0..steps {
        // (i) restart — forced on the very first step.
        if step == 0 || rng.gen::<f64>() < cfg.restart_prob {
            location = uniform_in_domain(cfg.domain, rng);
            counter = cfg.counter_reset;
        } else if counter == 0 {
            // Shift r_shift toward a random direction, then reset the counter.
            let dir = unit_vector::<D>(rng);
            for i in 0..D {
                location[i] += dir[i] * cfg.shift_radius;
            }
            clamp_to_domain(&mut location, cfg.domain);
            counter = cfg.counter_reset;
        }
        // (ii) emit a point in the vicinity ball; decrement the counter.
        let mut p = uniform_in_ball(&location, cfg.vicinity_radius, rng);
        clamp_to_domain(&mut p, cfg.domain);
        out.push(p);
        counter -= 1;
    }
    for _ in 0..cfg.noise_points() {
        out.push(uniform_in_domain(cfg.domain, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_requested_count_in_domain() {
        let cfg = SpreaderConfig::paper_defaults(10_000, 3);
        let mut rng = StdRng::seed_from_u64(42);
        let pts = seed_spreader::<3>(&cfg, &mut rng);
        assert_eq!(pts.len(), 10_000);
        for p in &pts {
            assert!(p.coords().iter().all(|&c| (0.0..=cfg.domain).contains(&c)));
        }
    }

    #[test]
    fn noise_split_matches_config() {
        let cfg = SpreaderConfig::paper_defaults(100_000, 2);
        assert_eq!(cfg.cluster_points() + cfg.noise_points(), 100_000);
        assert_eq!(cfg.noise_points(), 10); // 1e-4 of 100k
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SpreaderConfig::paper_defaults(2_000, 2);
        let a = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(7));
        let b = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn clusters_are_denser_than_noise() {
        // Structural sanity: the average nearest-neighbor distance of cluster
        // points must be far below that of a uniform scatter of the same size.
        let cfg = SpreaderConfig::paper_defaults(3_000, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let pts = seed_spreader::<2>(&cfg, &mut rng);
        let cluster = &pts[..cfg.cluster_points()];
        let sample: Vec<_> = cluster.iter().step_by(37).collect();
        let mean_nn: f64 = sample
            .iter()
            .map(|p| {
                cluster
                    .iter()
                    .filter(|q| !std::ptr::eq(*q, *p))
                    .map(|q| p.dist(q))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / sample.len() as f64;
        // Uniform 3000 points in (1e5)^2 would have mean NN distance ≈ 913;
        // spreader clusters live in radius-100 balls, so NN distances are tiny.
        assert!(mean_nn < 50.0, "mean NN distance {mean_nn} too large");
    }

    #[test]
    fn restart_prob_one_gives_pure_scatter() {
        // Degenerate config: restart every step → no cluster structure, but
        // still exactly n points in the domain.
        let cfg = SpreaderConfig {
            restart_prob: 1.0,
            ..SpreaderConfig::paper_defaults(500, 2)
        };
        let pts = seed_spreader::<2>(&cfg, &mut StdRng::seed_from_u64(1));
        assert_eq!(pts.len(), 500);
    }
}
