//! Plain CSV persistence for point sets (one point per line, comma-separated
//! coordinates, no header). Used by the `repro` binary to dump the Figure 8/9
//! datasets and cluster labelings for external plotting.
//!
//! The dynamic readers used by the CLI report malformed input as
//! [`DbscanError::Parse`] carrying the 1-based line number and the offending
//! token, so front ends can print the diagnostic verbatim.

use dbscan_core::DbscanError;
use dbscan_geom::Point;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes `points` to `path` as CSV.
pub fn write_points_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for p in points {
        write_point_line(&mut w, p)?;
    }
    w.flush()
}

fn write_point_line<const D: usize>(w: &mut impl Write, p: &Point<D>) -> io::Result<()> {
    for (i, c) in p.coords().iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        write!(w, "{c}")?;
    }
    w.write_all(b"\n")
}

/// Writes points together with an integer label per point (e.g. cluster ids,
/// with -1 for noise), as `x1,...,xd,label` lines.
pub fn write_labeled_csv<const D: usize>(
    path: &Path,
    points: &[Point<D>],
    labels: &[i64],
) -> io::Result<()> {
    assert_eq!(points.len(), labels.len());
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (p, l) in points.iter().zip(labels) {
        for c in p.coords() {
            write!(w, "{c},")?;
        }
        writeln!(w, "{l}")?;
    }
    w.flush()
}

/// Reads a CSV written by [`write_points_csv`]. Lines must have exactly `D`
/// fields; empty lines are skipped.
pub fn read_points_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut coords = [0.0; D];
        let mut fields = line.split(',');
        for (i, c) in coords.iter_mut().enumerate() {
            let field = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected {D} fields, got {i}", lineno + 1),
                )
            })?;
            *c = field.trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad float {field:?}: {e}", lineno + 1),
                )
            })?;
        }
        if fields.next().is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: more than {D} fields", lineno + 1),
            ));
        }
        out.push(Point(coords));
    }
    Ok(out)
}

/// Reads a CSV of unknown dimensionality: returns `(dim, flat coordinates)`
/// where `flat.len() == dim * n`. The dimension is inferred from the first
/// non-empty line; all lines must agree. Used by the `dbscan` CLI, which picks
/// the compile-time dimension at runtime.
///
/// Malformed rows yield [`DbscanError::Parse`] with the 1-based line number
/// and the offending token (the bad field, or the whole row for shape
/// errors); underlying read failures yield [`DbscanError::Io`].
pub fn read_csv_dynamic(path: &Path) -> Result<(usize, Vec<f64>), DbscanError> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut dim = 0usize;
    let mut flat = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let start = flat.len();
        for field in line.split(',') {
            let v = field
                .trim()
                .parse::<f64>()
                .map_err(|e| DbscanError::Parse {
                    line: lineno + 1,
                    token: field.trim().to_string(),
                    message: format!("not a valid number ({e})"),
                })?;
            flat.push(v);
        }
        let this_dim = flat.len() - start;
        if dim == 0 {
            dim = this_dim;
        } else if this_dim != dim {
            return Err(DbscanError::Parse {
                line: lineno + 1,
                token: line.trim().to_string(),
                message: format!("row has {this_dim} fields, expected {dim}"),
            });
        }
    }
    if dim == 0 {
        return Err(DbscanError::Parse {
            line: 1,
            token: String::new(),
            message: "empty input file (no non-blank lines)".to_string(),
        });
    }
    Ok((dim, flat))
}

/// Reshapes the flat coordinates of [`read_csv_dynamic`] into `Point<D>`s.
/// Panics if `flat.len()` is not a multiple of `D`.
pub fn points_from_flat<const D: usize>(flat: &[f64]) -> Vec<Point<D>> {
    try_points_from_flat(flat).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`points_from_flat`]: a flat length that is not a
/// multiple of `D` becomes a [`DbscanError::Parse`] naming the trailing
/// partial row.
pub fn try_points_from_flat<const D: usize>(flat: &[f64]) -> Result<Vec<Point<D>>, DbscanError> {
    let rem = flat.len() % D;
    if rem != 0 {
        return Err(DbscanError::Parse {
            line: flat.len() / D + 1,
            token: format!("{rem} trailing coordinate(s)"),
            message: format!("flat length {} is not a multiple of the dimension {D}", flat.len()),
        });
    }
    Ok(flat
        .chunks_exact(D)
        .map(|c| {
            let mut a = [0.0; D];
            a.copy_from_slice(c);
            Point(a)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbscan-datagen-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmpfile("roundtrip.csv");
        let pts = vec![p2(1.5, -2.25), p2(0.0, 1e5)];
        write_points_csv(&path, &pts).unwrap();
        let back: Vec<Point<2>> = read_points_csv(&path).unwrap();
        assert_eq!(back, pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labeled_roundtrip_via_text() {
        let path = tmpfile("labeled.csv");
        let pts = vec![p2(1.0, 2.0)];
        write_labeled_csv(&path, &pts, &[-1]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.trim(), "1,2,-1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_field_count_is_rejected() {
        let path = tmpfile("bad.csv");
        std::fs::write(&path, "1.0,2.0,3.0\n").unwrap();
        assert!(read_points_csv::<2>(&path).is_err());
        assert!(read_points_csv::<4>(&path).is_err());
        assert!(read_points_csv::<3>(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_reader_infers_dim() {
        let path = tmpfile("dyn.csv");
        std::fs::write(&path, "1,2,3\n4,5,6\n\n7,8,9\n").unwrap();
        let (dim, flat) = read_csv_dynamic(&path).unwrap();
        assert_eq!(dim, 3);
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let pts = points_from_flat::<3>(&flat);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].coords(), &[7.0, 8.0, 9.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_reader_rejects_ragged_rows_with_line_and_token() {
        let path = tmpfile("ragged.csv");
        std::fs::write(&path, "1,2\n3,4,5\n").unwrap();
        match read_csv_dynamic(&path).unwrap_err() {
            DbscanError::Parse { line, token, message } => {
                assert_eq!(line, 2);
                assert_eq!(token, "3,4,5");
                assert!(message.contains("3 fields, expected 2"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_reader_names_the_bad_token() {
        let path = tmpfile("dynbadfloat.csv");
        std::fs::write(&path, "1,2\n\n3,oops\n").unwrap();
        match read_csv_dynamic(&path).unwrap_err() {
            DbscanError::Parse { line, token, .. } => {
                assert_eq!(line, 3); // 1-based, blank line still counted
                assert_eq!(token, "oops");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn try_points_from_flat_rejects_partial_rows() {
        assert_eq!(try_points_from_flat::<2>(&[1.0, 2.0, 3.0, 4.0]).unwrap().len(), 2);
        match try_points_from_flat::<2>(&[1.0, 2.0, 3.0]).unwrap_err() {
            DbscanError::Parse { line, token, .. } => {
                assert_eq!(line, 2);
                assert!(token.contains("1 trailing"), "{token}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn dynamic_reader_rejects_empty_file() {
        let path = tmpfile("emptyfile.csv");
        std::fs::write(&path, "\n\n").unwrap();
        assert!(read_csv_dynamic(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_float_is_rejected() {
        let path = tmpfile("badfloat.csv");
        std::fs::write(&path, "1.0,abc\n").unwrap();
        let err = read_points_csv::<2>(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
