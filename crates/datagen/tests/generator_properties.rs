//! Property-based tests for the dataset generators.

use dbscan_datagen::{seed_spreader, SpreaderConfig};
use dbscan_geom::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spreader_respects_count_domain_and_finiteness(
        n in 1usize..3000,
        seed in any::<u64>(),
        restart in 0.0..1.0f64,
        noise in 0.0..0.5f64,
        vicinity in 1.0..500.0f64,
    ) {
        let cfg = SpreaderConfig {
            n,
            restart_prob: restart,
            noise_fraction: noise,
            counter_reset: 50,
            shift_radius: 100.0,
            vicinity_radius: vicinity,
            domain: 10_000.0,
        };
        let pts: Vec<Point<3>> = seed_spreader(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(pts.len(), n);
        for p in &pts {
            prop_assert!(p.is_finite());
            prop_assert!(p.coords().iter().all(|&c| (0.0..=10_000.0).contains(&c)));
        }
        prop_assert_eq!(cfg.cluster_points() + cfg.noise_points(), n);
    }

    #[test]
    fn spreader_is_deterministic(seed in any::<u64>()) {
        let cfg = SpreaderConfig::paper_defaults(500, 2);
        let a: Vec<Point<2>> = seed_spreader(&cfg, &mut StdRng::seed_from_u64(seed));
        let b: Vec<Point<2>> = seed_spreader(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn realworld_generators_are_finite_and_sized(n in 10usize..2000, seed in any::<u64>()) {
        use dbscan_datagen::realworld::{farm_like, household_like, pamap2_like};
        let a = pamap2_like(n, seed);
        let b = farm_like(n, seed);
        let c = household_like(n, seed);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(b.len(), n);
        prop_assert_eq!(c.len(), n);
        prop_assert!(a.iter().all(Point::is_finite));
        prop_assert!(b.iter().all(Point::is_finite));
        prop_assert!(c.iter().all(Point::is_finite));
    }
}
