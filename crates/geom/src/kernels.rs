//! Blocked, autovectorizer-friendly distance kernels over structure-of-arrays
//! point storage.
//!
//! The grid algorithms of the paper spend essentially all of their time in
//! three loops: the BCP edge predicate between two cells' core points, the
//! `count_within_eps` neighborhood counting behind core labeling, and kd-tree
//! leaf scans. All three compare one query point against *many* candidates
//! with no data dependency between candidates — ideal SIMD shape, except that
//! array-of-structs `Point<D>` storage and per-candidate early exits defeat
//! the autovectorizer. This module fixes both:
//!
//! * candidates are stored as one contiguous `f64` *lane* per dimension (a
//!   [`SoaBlock`]), so the inner loop is a unit-stride stream;
//! * distances are computed for a whole block of up to [`BLOCK`] candidates
//!   with **no early exit inside the block** (branchless `≤ ε²` mask
//!   accumulation); early termination happens only *between* blocks.
//!
//! Bit-identity: for candidate `j`, [`dist_sq_one_to_block`] computes
//! `(lane_0[j]-q_0)² + (lane_1[j]-q_1)² + …` accumulating dimensions in
//! ascending order — exactly the order of [`Point::dist_sq`]'s
//! `for i in 0..D { acc += d*d }` loop. Blocking reorders computation only
//! *across* candidates, whose results are independent, so every distance (and
//! hence every count and predicate) is bit-identical to the scalar loops the
//! kernels replace. The property tests in `dbscan-index` assert this across
//! dimensions, ragged tails, and adversarial coordinates.

use crate::point::Point;

/// Number of candidates processed per kernel invocation: 64 `f64`s per lane
/// fill eight 64-byte cache lines per dimension and keep the distance buffer
/// (512 B) comfortably in registers/L1, while bounding how much work an early
/// exit between blocks can waste.
pub const BLOCK: usize = 64;

/// A borrowed structure-of-arrays view of `len` points: one `&[f64]` lane of
/// length `len` per dimension.
///
/// Two storage shapes back it: per-cell contiguous storage (lane `d` at
/// `data[d*len..(d+1)*len]`, see [`SoaBlock::from_contiguous`]) and sub-ranges
/// of global lanes (kd-tree leaves, see [`SoaBlock::from_lanes`]).
#[derive(Clone, Copy)]
pub struct SoaBlock<'a, const D: usize> {
    lanes: [&'a [f64]; D],
}

impl<'a, const D: usize> SoaBlock<'a, D> {
    /// View over contiguous per-cell storage: `data` holds `len` coordinates
    /// of dimension 0, then `len` of dimension 1, and so on.
    pub fn from_contiguous(data: &'a [f64], len: usize) -> Self {
        assert_eq!(data.len(), len * D, "lane data must be len*D floats");
        SoaBlock {
            lanes: std::array::from_fn(|d| &data[d * len..(d + 1) * len]),
        }
    }

    /// View over `D` independent equal-length lane slices.
    pub fn from_lanes(lanes: [&'a [f64]; D]) -> Self {
        for lane in &lanes[1..] {
            assert_eq!(lane.len(), lanes[0].len(), "lanes must have equal length");
        }
        SoaBlock { lanes }
    }

    /// Gathers `points[ids[j]]` into fresh owned lanes (used for per-cell
    /// core-point storage and by tests). Returns the contiguous buffer for
    /// [`SoaBlock::from_contiguous`].
    pub fn gather(points: &[Point<D>], ids: &[u32]) -> Vec<f64> {
        let mut data = Vec::with_capacity(ids.len() * D);
        for d in 0..D {
            for &i in ids {
                data.push(points[i as usize][d]);
            }
        }
        data
    }

    /// Number of points in the view.
    pub fn len(&self) -> usize {
        self.lanes[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.lanes[0].is_empty()
    }

    /// Lane `d`: the `d`-th coordinate of every point in the view.
    pub fn lane(&self, d: usize) -> &'a [f64] {
        self.lanes[d]
    }

    /// Rebuilds point `j` from the lanes.
    pub fn point(&self, j: usize) -> Point<D> {
        Point(std::array::from_fn(|d| self.lanes[d][j]))
    }

    /// Sub-view of `len` points starting at `start`.
    pub fn sub(&self, start: usize, len: usize) -> SoaBlock<'a, D> {
        SoaBlock {
            lanes: std::array::from_fn(|d| &self.lanes[d][start..start + len]),
        }
    }
}

/// Writes `q.dist_sq(block[j])` into `out[j]` for every point of `block`.
/// `out.len()` must equal `block.len()`. No comparisons, no early exit: a
/// pure unit-stride multiply-add stream the autovectorizer turns into SIMD.
///
/// Dimension 0 initializes, dimensions `1..D` accumulate — per candidate this
/// is exactly [`Point::dist_sq`]'s ascending-dimension sum, so each `out[j]`
/// is bit-identical to the scalar computation. (`D` is a compile-time
/// constant, so the outer loop fully unrolls per monomorphization.)
#[inline]
pub fn dist_sq_one_to_block<const D: usize>(q: &Point<D>, block: &SoaBlock<'_, D>, out: &mut [f64]) {
    let len = out.len();
    assert_eq!(len, block.len(), "out must have one slot per candidate");
    let lane0 = &block.lanes[0][..len];
    let q0 = q[0];
    for j in 0..len {
        let diff = lane0[j] - q0;
        out[j] = diff * diff;
    }
    for d in 1..D {
        let lane = &block.lanes[d][..len];
        let qd = q[d];
        for j in 0..len {
            let diff = lane[j] - qd;
            out[j] += diff * diff;
        }
    }
}

/// Distances of one chunk (≤ [`BLOCK`] points) and a branchless count of
/// those ≤ `eps_sq`.
#[inline]
fn count_chunk<const D: usize>(q: &Point<D>, chunk: &SoaBlock<'_, D>, eps_sq: f64) -> usize {
    let len = chunk.len();
    debug_assert!(len <= BLOCK);
    let mut buf = [0.0f64; BLOCK];
    dist_sq_one_to_block(q, chunk, &mut buf[..len]);
    let mut count = 0usize;
    for &d in &buf[..len] {
        count += (d <= eps_sq) as usize;
    }
    count
}

/// The one shared early-stop-at-cap loop behind every `count_within`
/// implementation (grid, kd-tree, linear scan): walks `total` candidates in
/// [`BLOCK`]-sized chunks, adding `chunk_count(start, len)` per chunk, and
/// stops *between* chunks once the count reaches `cap`. Returns
/// `(count, examined)`; `count` may overshoot `cap` by at most one chunk, so
/// callers with exact-cap semantics clamp with `count.min(cap)`.
#[inline]
fn capped_chunk_scan(
    total: usize,
    cap: usize,
    mut chunk_count: impl FnMut(usize, usize) -> usize,
) -> (usize, usize) {
    let mut count = 0usize;
    let mut examined = 0usize;
    let mut start = 0usize;
    while start < total && count < cap {
        let len = BLOCK.min(total - start);
        count += chunk_count(start, len);
        examined += len;
        start += len;
    }
    (count, examined)
}

/// Number of points of `block` within the closed ball `B(q, √eps_sq)`.
/// Processes every candidate (no cap): the fully branchless variant.
pub fn count_within_block<const D: usize>(
    q: &Point<D>,
    block: &SoaBlock<'_, D>,
    eps_sq: f64,
) -> usize {
    capped_chunk_scan(block.len(), usize::MAX, |start, len| {
        count_chunk(q, &block.sub(start, len), eps_sq)
    })
    .0
}

/// Capped twin of [`count_within_block`]: stops between chunks once the
/// running count reaches `cap`. Returns `(count, examined)` where `count` may
/// overshoot `cap` (clamp at the call site) and `examined` is the number of
/// candidates whose distance was actually computed.
pub fn count_within_block_capped<const D: usize>(
    q: &Point<D>,
    block: &SoaBlock<'_, D>,
    eps_sq: f64,
    cap: usize,
) -> (usize, usize) {
    capped_chunk_scan(block.len(), cap, |start, len| {
        count_chunk(q, &block.sub(start, len), eps_sq)
    })
}

/// AoS twin of [`count_within_block_capped`] for callers that only hold
/// `&[Point<D>]` (the linear-scan baseline): same chunking, same branchless
/// accumulate, same between-chunk cap stop — the cap semantics live in one
/// place ([`capped_chunk_scan`]) for all three index implementations.
pub fn count_within_aos_capped<const D: usize>(
    q: &Point<D>,
    pts: &[Point<D>],
    eps_sq: f64,
    cap: usize,
) -> usize {
    capped_chunk_scan(pts.len(), cap, |start, len| {
        let mut buf = [0.0f64; BLOCK];
        for (slot, p) in buf[..len].iter_mut().zip(&pts[start..start + len]) {
            *slot = p.dist_sq(q);
        }
        let mut count = 0usize;
        for &d in &buf[..len] {
            count += (d <= eps_sq) as usize;
        }
        count
    })
    .0
}

/// Is any point of `block` within the closed ball `B(q, √eps_sq)`? Early
/// exit between chunks only.
pub fn any_within_block<const D: usize>(q: &Point<D>, block: &SoaBlock<'_, D>, eps_sq: f64) -> bool {
    capped_chunk_scan(block.len(), 1, |start, len| {
        count_chunk(q, &block.sub(start, len), eps_sq)
    })
    .0 > 0
}

/// The cache-blocked BCP edge predicate: is any cross pair
/// `(p, q) ∈ a × b` within the closed ball distance `√eps_sq`?
///
/// The larger side is streamed in [`BLOCK`]-sized chunks held hot in cache
/// while every point of the smaller side is tested against the chunk;
/// termination happens between (query × chunk) kernel calls, never inside
/// one. Equivalent to the scalar double loop (property-tested).
pub fn bcp_block_pair<const D: usize>(
    a: &SoaBlock<'_, D>,
    b: &SoaBlock<'_, D>,
    eps_sq: f64,
) -> bool {
    matches!(
        bcp_block_pair_budgeted(a, b, eps_sq, usize::MAX),
        Some(true)
    )
}

/// Budgeted twin of [`bcp_block_pair`]: the optimistic probe behind the
/// tree-assisted edge route. Scans at most `eval_budget` cross-pair
/// distances (checked between kernel calls, so the overshoot is bounded by
/// one ≤[`BLOCK`]-wide chunk) and returns `Some(true)` on the first hit,
/// `Some(false)` if the full cross product was scanned without one, or
/// `None` if the budget ran out undecided — the caller then falls back to
/// an indexed structure. Hit/miss answers are exact either way, so routing
/// through the budget never changes a clustering.
pub fn bcp_block_pair_budgeted<const D: usize>(
    a: &SoaBlock<'_, D>,
    b: &SoaBlock<'_, D>,
    eps_sq: f64,
    mut eval_budget: usize,
) -> Option<bool> {
    let (queries, stream) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut start = 0usize;
    while start < stream.len() {
        let len = BLOCK.min(stream.len() - start);
        let chunk = stream.sub(start, len);
        for i in 0..queries.len() {
            if eval_budget < len {
                return None;
            }
            let q = queries.point(i);
            if count_chunk(&q, &chunk, eps_sq) > 0 {
                return Some(true);
            }
            eval_budget -= len;
        }
        start += len;
    }
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::p2;

    fn block_of(pts: &[Point<2>]) -> (Vec<f64>, usize) {
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        (SoaBlock::gather(pts, &ids), pts.len())
    }

    #[test]
    fn dist_sq_matches_scalar_bitwise() {
        let pts: Vec<Point<2>> = (0..150)
            .map(|i| p2(i as f64 * 0.37, (i * i % 97) as f64 * 1.13))
            .collect();
        let (data, len) = block_of(&pts);
        let block = SoaBlock::from_contiguous(&data, len);
        let q = p2(13.5, 42.25);
        let mut out = vec![0.0; len];
        dist_sq_one_to_block(&q, &block, &mut out);
        for (j, p) in pts.iter().enumerate() {
            assert_eq!(out[j].to_bits(), p.dist_sq(&q).to_bits(), "j={j}");
        }
    }

    #[test]
    fn counts_and_predicates_match_scalar() {
        let pts: Vec<Point<2>> = (0..200).map(|i| p2((i % 17) as f64, (i % 23) as f64)).collect();
        let (data, len) = block_of(&pts);
        let block = SoaBlock::from_contiguous(&data, len);
        let q = p2(8.0, 11.0);
        for eps_sq in [0.0, 2.0, 25.0, 1e4] {
            let brute = pts.iter().filter(|p| p.dist_sq(&q) <= eps_sq).count();
            assert_eq!(count_within_block(&q, &block, eps_sq), brute);
            assert_eq!(any_within_block(&q, &block, eps_sq), brute > 0);
            for cap in [0usize, 1, 3, brute.max(1), usize::MAX] {
                let (c, ex) = count_within_block_capped(&q, &block, eps_sq, cap);
                assert_eq!(c.min(cap), brute.min(cap), "cap={cap}");
                assert!(ex <= len);
                assert_eq!(count_within_aos_capped(&q, &pts, eps_sq, cap).min(cap), brute.min(cap));
            }
        }
    }

    #[test]
    fn bcp_pair_matches_double_loop() {
        let a: Vec<Point<2>> = (0..90).map(|i| p2(i as f64 * 0.9, 0.0)).collect();
        let b: Vec<Point<2>> = (0..130).map(|i| p2(i as f64 * 0.9, 7.0)).collect();
        let (da, la) = block_of(&a);
        let (db, lb) = block_of(&b);
        let ba = SoaBlock::<2>::from_contiguous(&da, la);
        let bb = SoaBlock::<2>::from_contiguous(&db, lb);
        for eps_sq in [1.0, 48.9, 49.0, 1e6] {
            let brute = a
                .iter()
                .any(|p| b.iter().any(|r| p.dist_sq(r) <= eps_sq));
            assert_eq!(bcp_block_pair(&ba, &bb, eps_sq), brute, "eps_sq={eps_sq}");
            assert_eq!(bcp_block_pair(&bb, &ba, eps_sq), brute);
        }
    }

    #[test]
    fn empty_blocks() {
        let empty = SoaBlock::<2>::from_contiguous(&[], 0);
        let one_data = SoaBlock::<2>::gather(&[p2(0.0, 0.0)], &[0]);
        let one = SoaBlock::<2>::from_contiguous(&one_data, 1);
        let q = p2(0.0, 0.0);
        assert_eq!(count_within_block(&q, &empty, 1.0), 0);
        assert!(!any_within_block(&q, &empty, 1.0));
        assert!(!bcp_block_pair(&empty, &one, 1.0));
        assert!(!bcp_block_pair(&one, &empty, 1.0));
        assert!(bcp_block_pair(&one, &one, 0.0));
    }

    #[test]
    fn sub_views_and_point_roundtrip() {
        let pts: Vec<Point<2>> = (0..10).map(|i| p2(i as f64, -(i as f64))).collect();
        let (data, len) = block_of(&pts);
        let block = SoaBlock::from_contiguous(&data, len);
        for (j, p) in pts.iter().enumerate() {
            assert_eq!(&block.point(j), p);
        }
        let tail = block.sub(7, 3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.point(0), pts[7]);
    }
}
