//! Grid parameterization helpers shared by the exact and ρ-approximate algorithms.

use crate::cell::CellCoord;
use crate::point::Point;

/// Side length of the base grid used by both algorithms of the paper: `ε/√d`, so
/// that the diagonal of a cell is exactly `ε` and any two points in the same cell
/// are within distance `ε` of each other.
#[inline]
pub fn base_side<const D: usize>(eps: f64) -> f64 {
    eps / (D as f64).sqrt()
}

/// Number of levels of the hierarchical grid of Lemma 5:
/// `h = max(1, 1 + ⌈log2(1/ρ)⌉)`, so that the leaf side length is at most `ερ/√d`.
#[inline]
pub fn hierarchy_levels(rho: f64) -> usize {
    debug_assert!(rho > 0.0, "approximation ratio must be positive");
    if rho >= 1.0 {
        1
    } else {
        1 + (1.0 / rho).log2().ceil() as usize
    }
}

/// Enumerates all cell-coordinate offsets `δ` such that a cell at offset `δ` can be
/// an ε-neighbor (minimum distance at most `eps` for cells of side `side`).
///
/// The number of offsets is a constant for fixed `D` but grows like `(2√d + 3)^d`,
/// so this enumeration is only suitable for small `D` (it is what Gunawan's 2D
/// algorithm uses; the high-dimensional grid index in `dbscan-index` instead finds
/// *non-empty* neighbors through a tree over cell centers).
pub fn neighbor_offsets<const D: usize>(side: f64, eps: f64) -> Vec<[i64; D]> {
    let reach = (eps / side).ceil() as i64 + 1;
    let mut out = Vec::new();
    let mut cur = [0i64; D];
    enumerate_offsets::<D>(0, -reach, reach, &mut cur, &mut |offs| {
        let a = CellCoord([0; D]);
        let b = CellCoord(*offs);
        if a.eps_neighbors(&b, side, eps) {
            out.push(*offs);
        }
    });
    out
}

fn enumerate_offsets<const D: usize>(
    dim: usize,
    lo: i64,
    hi: i64,
    cur: &mut [i64; D],
    f: &mut impl FnMut(&[i64; D]),
) {
    if dim == D {
        f(cur);
        return;
    }
    for v in lo..=hi {
        cur[dim] = v;
        enumerate_offsets::<D>(dim + 1, lo, hi, cur, f);
    }
}

/// Verifies the defining property of the base grid: any two points in the same cell
/// are within `eps` of each other. (Used by tests and debug assertions.)
pub fn same_cell_implies_close<const D: usize>(a: &Point<D>, b: &Point<D>, eps: f64) -> bool {
    let side = base_side::<D>(eps);
    CellCoord::of(a, side) != CellCoord::of(b, side) || a.within(b, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_side_diagonal_is_eps() {
        let eps = 7.0;
        let side = base_side::<3>(eps);
        let diag = (3.0f64).sqrt() * side;
        assert!((diag - eps).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_levels_match_paper_formula() {
        // h = max(1, 1 + ceil(log2(1/ρ)))
        assert_eq!(hierarchy_levels(1.0), 1);
        assert_eq!(hierarchy_levels(0.5), 2);
        assert_eq!(hierarchy_levels(0.1), 5); // log2(10) ≈ 3.32 → ceil 4 → 5
        assert_eq!(hierarchy_levels(0.001), 11); // log2(1000) ≈ 9.97 → 10 → 11
    }

    #[test]
    fn leaf_side_at_most_rho_eps_over_sqrt_d() {
        for rho in [0.001, 0.01, 0.05, 0.1] {
            let eps = 5000.0;
            let h = hierarchy_levels(rho);
            let leaf_side = base_side::<5>(eps) / (1u64 << (h - 1)) as f64;
            assert!(
                leaf_side <= eps * rho / (5.0f64).sqrt() + 1e-9,
                "rho={rho}: leaf side {leaf_side} too large"
            );
        }
    }

    #[test]
    fn neighbor_offsets_2d_block() {
        // With side ε/√2 the conservative neighborhood is the full 5×5 block.
        let eps = 1.0;
        let offs = neighbor_offsets::<2>(base_side::<2>(eps), eps);
        assert_eq!(offs.len(), 25);
        assert!(offs.contains(&[0, 0]));
        assert!(offs.contains(&[2, 2]));
        assert!(!offs.contains(&[3, 0]));
    }

    #[test]
    fn neighbor_offsets_1d() {
        // side = ε in 1D: cells at offset ±2 have gap 1·side = ε (boundary, kept);
        // offset ±3 has gap 2ε (excluded).
        let offs = neighbor_offsets::<1>(1.0, 1.0);
        let mut sorted: Vec<i64> = offs.iter().map(|o| o[0]).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    fn same_cell_points_are_close() {
        let eps = 2.0;
        let side = base_side::<2>(eps);
        // Opposite corners of one cell are exactly the diagonal = eps apart.
        let a = Point([0.01 * side, 0.01 * side]);
        let b = Point([0.99 * side, 0.99 * side]);
        assert!(same_cell_implies_close(&a, &b, eps));
    }
}
