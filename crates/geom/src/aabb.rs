//! Axis-aligned bounding boxes and the ball predicates used by the grid and tree
//! structures.
//!
//! The ρ-approximate range-counting query of the paper (Section 4.3) classifies each
//! visited cell as (i) disjoint from `B(q, ε)`, (ii) fully covered by `B(q, ε(1+ρ))`,
//! or (iii) neither — exactly the three predicates exposed here.

use crate::point::Point;

/// A closed axis-aligned box `[lo, hi]` in `D` dimensions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Aabb<const D: usize> {
    pub lo: Point<D>,
    pub hi: Point<D>,
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from its corners. Debug-asserts `lo ≤ hi` coordinate-wise.
    #[inline]
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        debug_assert!((0..D).all(|i| lo[i] <= hi[i]), "inverted box");
        Aabb { lo, hi }
    }

    /// The degenerate box containing exactly one point.
    #[inline]
    pub fn point(p: Point<D>) -> Self {
        Aabb { lo: p, hi: p }
    }

    /// The smallest box containing all `points`. Returns `None` for an empty slice.
    pub fn bounding(points: &[Point<D>]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut lo = *first;
        let mut hi = *first;
        for p in rest {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Aabb { lo, hi })
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn extend(&mut self, p: &Point<D>) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grows the box to contain `other`.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        Aabb {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Whether `p` lies inside the closed box.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Squared distance from `q` to the closest point of the box (0 if inside).
    #[inline]
    pub fn min_dist_sq(&self, q: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let c = q[i];
            let d = if c < self.lo[i] {
                self.lo[i] - c
            } else if c > self.hi[i] {
                c - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared distance from `q` to the farthest point of the box.
    #[inline]
    pub fn max_dist_sq(&self, q: &Point<D>) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = (q[i] - self.lo[i]).abs().max((q[i] - self.hi[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// Whether the box intersects the closed ball `B(q, r)`.
    #[inline]
    pub fn intersects_ball(&self, q: &Point<D>, r: f64) -> bool {
        self.min_dist_sq(q) <= r * r
    }

    /// Whether the box lies entirely inside the closed ball `B(q, r)`.
    #[inline]
    pub fn inside_ball(&self, q: &Point<D>, r: f64) -> bool {
        self.max_dist_sq(q) <= r * r
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn side(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = 0.5 * (self.lo[i] + self.hi[i]);
        }
        Point(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::p2;

    fn unit() -> Aabb<2> {
        Aabb::new(p2(0.0, 0.0), p2(1.0, 1.0))
    }

    #[test]
    fn bounding_of_empty_is_none() {
        assert!(Aabb::<2>::bounding(&[]).is_none());
    }

    #[test]
    fn bounding_covers_all_points() {
        let pts = [p2(1.0, 5.0), p2(-2.0, 3.0), p2(0.5, 7.0)];
        let b = Aabb::bounding(&pts).unwrap();
        assert_eq!(b.lo, p2(-2.0, 3.0));
        assert_eq!(b.hi, p2(1.0, 7.0));
        for p in &pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn min_dist_zero_inside() {
        assert_eq!(unit().min_dist_sq(&p2(0.5, 0.5)), 0.0);
    }

    #[test]
    fn min_dist_to_corner() {
        // Query at (2, 2): closest box point is corner (1, 1), distance sqrt(2).
        assert_eq!(unit().min_dist_sq(&p2(2.0, 2.0)), 2.0);
    }

    #[test]
    fn min_dist_to_face() {
        assert_eq!(unit().min_dist_sq(&p2(0.5, 3.0)), 4.0);
    }

    #[test]
    fn max_dist_from_center() {
        // Farthest point from the center is any corner, at squared distance 0.5.
        assert_eq!(unit().max_dist_sq(&p2(0.5, 0.5)), 0.5);
    }

    #[test]
    fn ball_predicates() {
        let b = unit();
        let q = p2(2.0, 0.5);
        assert!(!b.intersects_ball(&q, 0.9));
        assert!(b.intersects_ball(&q, 1.0));
        assert!(!b.inside_ball(&q, 2.0));
        // Farthest corner from q is (0, 1): distance sqrt(4 + 0.25).
        assert!(b.inside_ball(&q, (4.25f64).sqrt()));
    }

    #[test]
    fn extend_and_union() {
        let mut b = Aabb::point(p2(1.0, 1.0));
        b.extend(&p2(3.0, 0.0));
        assert_eq!(b, Aabb::new(p2(1.0, 0.0), p2(3.0, 1.0)));
        let u = b.union(&unit());
        assert_eq!(u, Aabb::new(p2(0.0, 0.0), p2(3.0, 1.0)));
    }

    #[test]
    fn center_and_side() {
        let b = Aabb::new(p2(0.0, 2.0), p2(4.0, 6.0));
        assert_eq!(b.center(), p2(2.0, 4.0));
        assert_eq!(b.side(0), 4.0);
        assert_eq!(b.side(1), 4.0);
    }
}
