//! Fixed-dimension Euclidean points.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional Euclidean space.
///
/// The paper's algorithms only ever need coordinate access and (squared) Euclidean
/// distance, so the representation is a plain `[f64; D]`, which is `Copy` for every
/// dimensionality used in the experiments (d ≤ 7) and keeps point arrays contiguous.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f64; D]);

impl<const D: usize> std::default::Default for Point<D> {
    #[inline]
    fn default() -> Self {
        Point([0.0; D])
    }
}

impl<const D: usize> Point<D> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Point([0.0; D]);

    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Point(coords)
    }

    /// Returns the coordinate array.
    #[inline]
    pub fn coords(&self) -> &[f64; D] {
        &self.0
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Every proximity predicate in the workspace compares squared distances against
    /// squared thresholds to avoid the `sqrt` in the hot path.
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            acc += d * d;
        }
        acc
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Whether `other` lies in the closed ball `B(self, r)`.
    ///
    /// The paper's `B(p, ε)` is closed ("covers at least `MinPts` points"), so the
    /// comparison is `≤`.
    #[inline]
    pub fn within(&self, other: &Self, r: f64) -> bool {
        self.dist_sq(other) <= r * r
    }

    /// Coordinate-wise minimum.
    #[inline]
    pub fn min(&self, other: &Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] = out[i].min(other.0[i]);
        }
        Point(out)
    }

    /// Coordinate-wise maximum.
    #[inline]
    pub fn max(&self, other: &Self) -> Self {
        let mut out = self.0;
        for i in 0..D {
            out[i] = out[i].max(other.0[i]);
        }
        Point(out)
    }

    /// Returns `true` if every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    #[inline]
    fn from(coords: [f64; D]) -> Self {
        Point(coords)
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor for 2D points, used pervasively in tests and examples.
#[inline]
pub fn p2(x: f64, y: f64) -> Point<2> {
    Point([x, y])
}

/// Convenience constructor for 3D points.
#[inline]
pub fn p3(x: f64, y: f64, z: f64) -> Point<3> {
    Point([x, y, z])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_hand_computation() {
        let a = p2(0.0, 0.0);
        let b = p2(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = p3(1.5, -2.0, 7.25);
        let b = p3(-0.5, 3.0, 2.0);
        assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
        assert_eq!(a.dist_sq(&a), 0.0);
    }

    #[test]
    fn within_is_closed_ball() {
        let a = p2(0.0, 0.0);
        let b = p2(5.0, 0.0);
        assert!(a.within(&b, 5.0));
        assert!(!a.within(&b, 4.999));
    }

    #[test]
    fn min_max_are_coordinatewise() {
        let a = p2(1.0, 9.0);
        let b = p2(4.0, 2.0);
        assert_eq!(a.min(&b), p2(1.0, 2.0));
        assert_eq!(a.max(&b), p2(4.0, 9.0));
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut a = p3(1.0, 2.0, 3.0);
        assert_eq!(a[2], 3.0);
        a[0] = -1.0;
        assert_eq!(a.coords(), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn finite_detection() {
        assert!(p2(1.0, 2.0).is_finite());
        assert!(!p2(f64::NAN, 0.0).is_finite());
        assert!(!p2(f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn debug_format_is_tuple_like() {
        assert_eq!(format!("{:?}", p2(1.0, 2.5)), "(1, 2.5)");
    }
}
