//! Geometric primitives shared by every crate in the *DBSCAN Revisited* reproduction.
//!
//! The paper (Gan & Tao, SIGMOD 2015) works exclusively in low, fixed dimensionality
//! `d` with the Euclidean metric, so the whole workspace is generic over a
//! compile-time dimension `D` (`Point<const D: usize>`). This crate provides:
//!
//! * [`Point`] — a `D`-dimensional point with squared/plain Euclidean distances;
//! * [`Aabb`] — axis-aligned boxes with the ball predicates the grid algorithms need
//!   (minimum/maximum distance to a point, "fully inside ball", "disjoint from ball");
//! * [`CellCoord`] and the [`grid`] module — integer grid-cell coordinates for the
//!   side-length-`ε/√d` grids at the heart of the exact and ρ-approximate algorithms;
//! * [`hash`] — an FxHash-style hasher plus `HashMap`/`HashSet` aliases used for the
//!   hot cell-coordinate maps (written here so the workspace needs no extra
//!   dependency for fast hashing);
//! * [`kernels`] — blocked, autovectorizer-friendly distance kernels over
//!   structure-of-arrays ([`kernels::SoaBlock`]) point storage, the hot inner
//!   loops of the BCP edge tests, neighborhood counting, and kd-tree leaves
//!   (re-exported as `dbscan_core::kernels`).

// Indexed `for i in 0..D` loops over fixed-size coordinate arrays are the clearest
// way to write the paired-array arithmetic in this crate; zip-based rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod aabb;
pub mod cell;
pub mod grid;
pub mod hash;
pub mod kernels;
pub mod point;

pub use aabb::Aabb;
pub use cell::{CellCoord, CellError};
pub use hash::{FastHashMap, FastHashSet};
pub use point::Point;

/// The paper normalizes every dataset to the domain `[0, 10^5]` in each dimension
/// (Section 5.1). Exposed as a constant so generators and experiments agree.
pub const PAPER_DOMAIN: f64 = 100_000.0;
