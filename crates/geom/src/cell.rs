//! Integer grid-cell coordinates.
//!
//! Both the exact algorithm of Section 3.2 and the ρ-approximate algorithm of
//! Section 4 impose a grid on `R^d` whose cells are hyper-squares of side `ε/√d`
//! (so that any two points in the same cell are within distance `ε`). A cell is
//! identified by the integer vector `⌊p_i / side⌋`.

use crate::aabb::Aabb;
use crate::point::Point;
use std::fmt;

/// Largest admissible magnitude of an integer cell coordinate: `2^61`.
///
/// `f64 as i64` *saturates* on overflow, so an unchecked `⌊p_i / side⌋ as i64`
/// on an absurd span (say coordinates near ±1e308 with a small `ε`) silently
/// collapses distant points into the boundary cell and corrupts the grid. The
/// bound is deliberately two bits below `i64::MAX` so that every piece of
/// downstream coordinate arithmetic — neighbor offsets (±1), parent/child
/// halving, and the coordinate *differences* taken by [`CellCoord::min_dist_sq`]
/// (up to twice the magnitude) — stays comfortably inside `i64`.
pub const MAX_ABS_CELL_COORD: i64 = 1 << 61;

/// Why an integer cell coordinate could not be computed.
/// See [`CellCoord::try_of`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CellError {
    /// The cell side length is zero, negative, or non-finite. Sides are
    /// derived from `ε`, so: eps must be positive and finite.
    BadSide {
        /// The offending side length.
        side: f64,
    },
    /// `⌊p[dim] / side⌋` falls outside [`MAX_ABS_CELL_COORD`], so an `as i64`
    /// conversion would saturate and silently mis-bucket the point.
    Overflow {
        /// Dimension of the offending coordinate.
        dim: usize,
        /// The offending coordinate value.
        value: f64,
        /// The cell side length in use.
        side: f64,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::BadSide { side } => write!(
                f,
                "grid cell side must be positive and finite, got {side} \
                 (eps must be positive and finite)"
            ),
            CellError::Overflow { dim, value, side } => write!(
                f,
                "coordinate {value} (dimension {dim}) overflows the integer cell \
                 grid of side {side}; the dataset span is too large for this eps"
            ),
        }
    }
}

impl std::error::Error for CellError {}

/// Integer coordinates of a grid cell, for a grid anchored at the origin.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CellCoord<const D: usize>(pub [i64; D]);

impl<const D: usize> CellCoord<D> {
    /// The cell of side length `side` containing `p`.
    ///
    /// Uses `floor`, so points with negative coordinates map correctly
    /// (e.g. `-0.5 / 1.0` lands in cell `-1`, not `0`).
    ///
    /// Assumes `side` is positive/finite and the quotient fits the integer
    /// grid; callers that cannot guarantee this (unvalidated spans, externally
    /// supplied `ε`) must validate through [`CellCoord::try_of`] first — the
    /// `as i64` here saturates rather than failing.
    #[inline]
    pub fn of(p: &Point<D>, side: f64) -> Self {
        debug_assert!(side > 0.0, "cell side must be positive");
        let mut c = [0i64; D];
        for i in 0..D {
            c[i] = (p[i] / side).floor() as i64;
        }
        CellCoord(c)
    }

    /// Checked twin of [`CellCoord::of`]: rejects non-positive/non-finite
    /// sides and quotients whose floor falls outside
    /// [`MAX_ABS_CELL_COORD`] — the cases where the unchecked version would
    /// silently saturate — with a typed [`CellError`].
    #[inline]
    pub fn try_of(p: &Point<D>, side: f64) -> Result<Self, CellError> {
        if !(side > 0.0 && side.is_finite()) {
            return Err(CellError::BadSide { side });
        }
        let limit = MAX_ABS_CELL_COORD as f64;
        let mut c = [0i64; D];
        for i in 0..D {
            let q = (p[i] / side).floor();
            // The negated comparison also rejects NaN coordinates.
            if !(-limit..=limit).contains(&q) {
                return Err(CellError::Overflow {
                    dim: i,
                    value: p[i],
                    side,
                });
            }
            c[i] = q as i64;
        }
        Ok(CellCoord(c))
    }

    /// The closed box occupied by this cell in a grid of side `side`.
    #[inline]
    pub fn aabb(&self, side: f64) -> Aabb<D> {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for i in 0..D {
            lo[i] = self.0[i] as f64 * side;
            hi[i] = (self.0[i] + 1) as f64 * side;
        }
        Aabb::new(Point(lo), Point(hi))
    }

    /// Center of the cell.
    #[inline]
    pub fn center(&self, side: f64) -> Point<D> {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = (self.0[i] as f64 + 0.5) * side;
        }
        Point(c)
    }

    /// Squared minimum distance between two cells of side `side`.
    ///
    /// Cells at coordinate offset `δ` are separated by `max(|δ_i| − 1, 0)` whole
    /// cells along dimension `i`; the minimum distance is the norm of those gaps.
    /// Two cells are *ε-neighbors* (Section 2.2) iff this is at most `ε²`.
    #[inline]
    pub fn min_dist_sq(&self, other: &Self, side: f64) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            let gap = ((self.0[i] - other.0[i]).abs() - 1).max(0) as f64;
            acc += gap * gap;
        }
        acc * side * side
    }

    /// Whether two cells of side `side` are ε-neighbors, i.e. their minimum
    /// distance is at most `eps`. A cell is an ε-neighbor of itself.
    #[inline]
    pub fn eps_neighbors(&self, other: &Self, side: f64, eps: f64) -> bool {
        self.min_dist_sq(other, side) <= eps * eps
    }

    /// In the hierarchical grid of Section 4.3, each cell splits into `2^D`
    /// children of half the side length. Returns the child cell (one level down)
    /// containing `p`. Equivalent to `CellCoord::of(p, side / 2)`, provided `p`
    /// lies in `self`.
    #[inline]
    pub fn child_of(p: &Point<D>, parent_side: f64) -> Self {
        CellCoord::of(p, parent_side / 2.0)
    }

    /// The parent of this cell, one level up (double the side length).
    #[inline]
    pub fn parent(&self) -> Self {
        let mut c = [0i64; D];
        for i in 0..D {
            c[i] = self.0[i].div_euclid(2);
        }
        CellCoord(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::p2;

    #[test]
    fn of_uses_floor_for_negatives() {
        assert_eq!(CellCoord::of(&p2(-0.5, 2.5), 1.0), CellCoord([-1, 2]));
        assert_eq!(CellCoord::of(&p2(0.0, 0.0), 1.0), CellCoord([0, 0]));
    }

    #[test]
    fn aabb_roundtrip() {
        let c = CellCoord([2, -3]);
        let b = c.aabb(0.5);
        assert_eq!(b.lo, p2(1.0, -1.5));
        assert_eq!(b.hi, p2(1.5, -1.0));
        assert_eq!(CellCoord::of(&b.center(), 0.5), c);
    }

    #[test]
    fn min_dist_adjacent_is_zero() {
        let a = CellCoord([0, 0]);
        for d in [[1, 0], [0, 1], [1, 1], [-1, 1]] {
            assert_eq!(a.min_dist_sq(&CellCoord(d), 1.0), 0.0);
        }
        assert_eq!(a.min_dist_sq(&a, 1.0), 0.0);
    }

    #[test]
    fn min_dist_with_gap() {
        let a = CellCoord([0, 0]);
        // Offset (3, 0): two whole cells of gap.
        assert_eq!(a.min_dist_sq(&CellCoord([3, 0]), 2.0), 16.0);
        // Offset (2, 2): one cell gap in each dimension.
        assert_eq!(a.min_dist_sq(&CellCoord([2, 2]), 1.0), 2.0);
    }

    #[test]
    fn min_dist_is_symmetric() {
        let a = CellCoord([-4, 7]);
        let b = CellCoord([1, -2]);
        assert_eq!(a.min_dist_sq(&b, 1.5), b.min_dist_sq(&a, 1.5));
    }

    #[test]
    fn min_dist_lower_bounds_point_dist() {
        // Any points inside the two cells are at least min_dist apart.
        let side = 1.0;
        let a = CellCoord([0, 0]);
        let b = CellCoord([4, 3]);
        let pa = p2(0.99, 0.99); // near a's corner closest to b
        let pb = p2(4.01, 3.01);
        assert!(pa.dist_sq(&pb) >= a.min_dist_sq(&b, side));
    }

    #[test]
    fn eps_neighbor_count_in_2d() {
        // Section 2.2: in 2D with side ε/√2 each cell has at most 21 ε-neighbors
        // counting itself (the 5×5 block minus its 4 corners). Our predicate treats
        // cells as closed boxes, so the 4 diagonal corner cells — whose infimum
        // distance is exactly ε but never attained because floor-assignment makes
        // cells half-open — are conservatively included: 24 neighbors excluding
        // self. The superset only costs a few distance checks that can never
        // succeed; it never affects correctness.
        let eps = 1.0;
        let side = eps / 2f64.sqrt();
        let origin = CellCoord([0i64, 0]);
        let mut count = 0;
        for dx in -5..=5i64 {
            for dy in -5..=5i64 {
                if (dx, dy) == (0, 0) {
                    continue;
                }
                if origin.eps_neighbors(&CellCoord([dx, dy]), side, eps) {
                    count += 1;
                }
            }
        }
        assert_eq!(count, 24);
    }

    #[test]
    fn parent_child_consistency() {
        let p = p2(3.3, -1.7);
        let side = 1.0;
        let cell = CellCoord::of(&p, side);
        let child = CellCoord::<2>::child_of(&p, side);
        assert_eq!(child.parent(), cell);
    }

    #[test]
    fn parent_handles_negative_coords() {
        assert_eq!(CellCoord([-1i64, -2]).parent(), CellCoord([-1, -1]));
        assert_eq!(CellCoord([-3i64, 3]).parent(), CellCoord([-2, 1]));
    }
}
