//! A fast, non-cryptographic hasher for the hot cell-coordinate maps.
//!
//! The grid algorithms hash millions of `CellCoord` keys (small arrays of `i64`).
//! The standard library's SipHash is needlessly slow for this; the well-known
//! Fx algorithm (as used by rustc) is a few multiplies per word. It is implemented
//! here directly so the workspace does not need an extra dependency, and because
//! hash-DoS resistance is irrelevant for an in-process analytics library.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style hasher: `state = (rotl(state, 5) ^ word) * SEED` per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FastHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellCoord;

    fn hash_of<T: std::hash::Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        let c = CellCoord([1i64, -7, 42]);
        assert_eq!(hash_of(&c), hash_of(&c));
    }

    #[test]
    fn distinguishes_nearby_cells() {
        // Not a strong statistical test — just a sanity check that neighboring
        // cell coordinates do not trivially collide.
        let mut seen = std::collections::HashSet::new();
        for x in -10i64..10 {
            for y in -10i64..10 {
                seen.insert(hash_of(&CellCoord([x, y])));
            }
        }
        assert_eq!(seen.len(), 400);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<CellCoord<2>, usize> = FastHashMap::default();
        for i in 0..100i64 {
            m.insert(CellCoord([i, i * i]), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&CellCoord([7, 49])), Some(&7));
        assert_eq!(m.get(&CellCoord([7, 48])), None);
    }

    #[test]
    fn unaligned_byte_writes() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]); // exercises the remainder path
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 4]);
        assert_ne!(a, h2.finish());
    }
}
