//! Property-based tests for the geometric primitives.

use dbscan_geom::grid::{base_side, neighbor_offsets};
use dbscan_geom::{Aabb, CellCoord, Point};
use proptest::prelude::*;

fn arb_point3() -> impl Strategy<Value = Point<3>> {
    (-1e6..1e6f64, -1e6..1e6f64, -1e6..1e6f64).prop_map(|(x, y, z)| Point([x, y, z]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn metric_axioms(a in arb_point3(), b in arb_point3(), c in arb_point3()) {
        // Symmetry and identity.
        prop_assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
        prop_assert_eq!(a.dist_sq(&a), 0.0);
        // Triangle inequality (with floating-point slack).
        let (ab, bc, ac) = (a.dist(&b), b.dist(&c), a.dist(&c));
        prop_assert!(ac <= ab + bc + 1e-6 * (1.0 + ab + bc));
    }

    #[test]
    fn aabb_min_dist_lower_bounds_member_distances(
        a in arb_point3(),
        b in arb_point3(),
        q in arb_point3(),
        tx in 0.0..1.0f64, ty in 0.0..1.0f64, tz in 0.0..1.0f64,
    ) {
        let bbox = Aabb::new(a.min(&b), a.max(&b));
        // An arbitrary point inside the box...
        let inside = Point([
            bbox.lo[0] + tx * bbox.side(0),
            bbox.lo[1] + ty * bbox.side(1),
            bbox.lo[2] + tz * bbox.side(2),
        ]);
        prop_assert!(bbox.contains(&inside));
        // ...is never closer than min_dist nor farther than max_dist.
        let d = inside.dist_sq(&q);
        prop_assert!(d >= bbox.min_dist_sq(&q) - 1e-6 * (1.0 + d));
        prop_assert!(d <= bbox.max_dist_sq(&q) + 1e-6 * (1.0 + d));
    }

    #[test]
    fn ball_predicates_consistent(
        a in arb_point3(), b in arb_point3(), q in arb_point3(), r in 0.0..1e6f64,
    ) {
        let bbox = Aabb::new(a.min(&b), a.max(&b));
        if bbox.inside_ball(&q, r) {
            prop_assert!(bbox.intersects_ball(&q, r));
        }
        // Corners of a box inside the ball are inside the ball.
        if bbox.inside_ball(&q, r) {
            prop_assert!(q.within(&bbox.lo, r * (1.0 + 1e-12)));
            prop_assert!(q.within(&bbox.hi, r * (1.0 + 1e-12)));
        }
    }

    #[test]
    fn cell_assignment_consistent_with_cell_box(p in arb_point3(), side in 0.001..1e4f64) {
        let cell = CellCoord::of(&p, side);
        let bbox = cell.aabb(side);
        // Floor-assignment puts the point inside its (closed) cell box, up to
        // one ulp of rounding at the boundary.
        let slack = 1e-9 * side.max(p.coords().iter().fold(0.0f64, |m, c| m.max(c.abs())));
        for i in 0..3 {
            prop_assert!(p[i] >= bbox.lo[i] - slack);
            prop_assert!(p[i] <= bbox.hi[i] + slack);
        }
    }

    #[test]
    fn cell_min_dist_lower_bounds_point_dist(
        p in arb_point3(), q in arb_point3(), side in 0.001..1e4f64,
    ) {
        let cp = CellCoord::of(&p, side);
        let cq = CellCoord::of(&q, side);
        let lower = cp.min_dist_sq(&cq, side);
        let d = p.dist_sq(&q);
        prop_assert!(d >= lower - 1e-6 * (1.0 + d), "{d} < {lower}");
    }

    #[test]
    fn same_cell_implies_within_eps(p in arb_point3(), q in arb_point3(), eps in 0.001..1e4f64) {
        let side = base_side::<3>(eps);
        if CellCoord::of(&p, side) == CellCoord::of(&q, side) {
            prop_assert!(p.dist_sq(&q) <= eps * eps * (1.0 + 1e-9));
        }
    }
}

#[test]
fn neighbor_offsets_are_symmetric_sets() {
    for eps in [1.0, 3.7] {
        let side = base_side::<3>(eps);
        let offs = neighbor_offsets::<3>(side, eps);
        for o in &offs {
            let neg = [-o[0], -o[1], -o[2]];
            assert!(offs.contains(&neg), "offset set must be symmetric");
        }
        assert!(offs.contains(&[0, 0, 0]));
    }
}
