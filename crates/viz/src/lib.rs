//! Dependency-free renderers for 2D clusterings.
//!
//! The paper's Figures 8 and 9 are scatter plots of the 2D seed-spreader
//! dataset, colored by cluster. This crate regenerates them as files:
//!
//! * [`svg::render_clusters`] — an SVG scatter plot (one `<circle>` per point,
//!   color per cluster, noise in gray);
//! * [`ppm::render_clusters`] — a raster PPM (P6) image for quick viewing
//!   without a browser.
//!
//! Both renderers share the same categorical palette and coordinate mapping.

pub mod palette;
pub mod ppm;
pub mod svg;

use dbscan_core::Clustering;
use dbscan_geom::{Aabb, Point};

/// Maps data space to image space: uniform scale, padded, y flipped (image
/// origin is top-left).
#[derive(Clone, Copy, Debug)]
pub struct ViewBox {
    bbox: Aabb<2>,
    width: u32,
    height: u32,
    pad: f64,
}

impl ViewBox {
    /// A view of `points` in a `width`×`height` image with 4% padding.
    /// Returns `None` for an empty point set.
    pub fn fit(points: &[Point<2>], width: u32, height: u32) -> Option<ViewBox> {
        let bbox = Aabb::bounding(points)?;
        Some(ViewBox {
            bbox,
            width,
            height,
            pad: 0.04,
        })
    }

    /// Image coordinates of a data point.
    pub fn map(&self, p: &Point<2>) -> (f64, f64) {
        let (w, h) = (self.width as f64, self.height as f64);
        let usable_w = w * (1.0 - 2.0 * self.pad);
        let usable_h = h * (1.0 - 2.0 * self.pad);
        let span_x = self.bbox.side(0).max(1e-12);
        let span_y = self.bbox.side(1).max(1e-12);
        // Uniform scale preserving aspect ratio.
        let scale = (usable_w / span_x).min(usable_h / span_y);
        let cx = 0.5 * (self.bbox.lo[0] + self.bbox.hi[0]);
        let cy = 0.5 * (self.bbox.lo[1] + self.bbox.hi[1]);
        let x = w / 2.0 + (p[0] - cx) * scale;
        let y = h / 2.0 - (p[1] - cy) * scale;
        (x, y)
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }
}

/// Per-point color: the cluster color of the first cluster the point belongs
/// to, or gray for noise.
pub fn point_color(clustering: &Clustering, i: usize) -> (u8, u8, u8) {
    match clustering.assignments[i].clusters().first() {
        Some(&c) => palette::color(c as usize),
        None => palette::NOISE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_geom::point::p2;

    #[test]
    fn viewbox_maps_corners_inside_image() {
        let pts = vec![p2(0.0, 0.0), p2(10.0, 20.0), p2(-5.0, 3.0)];
        let vb = ViewBox::fit(&pts, 400, 300).unwrap();
        for p in &pts {
            let (x, y) = vb.map(p);
            assert!((0.0..=400.0).contains(&x), "x={x}");
            assert!((0.0..=300.0).contains(&y), "y={y}");
        }
    }

    #[test]
    fn viewbox_preserves_aspect_ratio() {
        // A square of side 10 must map to a square in image space.
        let pts = vec![p2(0.0, 0.0), p2(10.0, 10.0)];
        let vb = ViewBox::fit(&pts, 800, 400).unwrap();
        let (x0, y0) = vb.map(&p2(0.0, 0.0));
        let (x1, y1) = vb.map(&p2(10.0, 10.0));
        assert!(((x1 - x0).abs() - (y1 - y0).abs()).abs() < 1e-9);
    }

    #[test]
    fn y_axis_is_flipped() {
        let pts = vec![p2(0.0, 0.0), p2(0.0, 10.0)];
        let vb = ViewBox::fit(&pts, 100, 100).unwrap();
        let (_, y_low) = vb.map(&p2(0.0, 0.0));
        let (_, y_high) = vb.map(&p2(0.0, 10.0));
        assert!(y_high < y_low, "larger data y must be higher in the image");
    }

    #[test]
    fn empty_points_give_no_viewbox() {
        assert!(ViewBox::fit(&[], 100, 100).is_none());
    }

    #[test]
    fn degenerate_single_point() {
        let pts = vec![p2(5.0, 5.0)];
        let vb = ViewBox::fit(&pts, 100, 100).unwrap();
        let (x, y) = vb.map(&pts[0]);
        assert!((x - 50.0).abs() < 1.0 && (y - 50.0).abs() < 1.0);
    }
}
