//! A categorical color palette for cluster ids.
//!
//! Twelve distinguishable base colors; beyond twelve clusters the palette
//! cycles with a deterministic brightness shift so ids remain visually stable
//! across renders.

/// Noise points are drawn in light gray.
pub const NOISE: (u8, u8, u8) = (200, 200, 200);

const BASE: [(u8, u8, u8); 12] = [
    (31, 119, 180),  // blue
    (255, 127, 14),  // orange
    (44, 160, 44),   // green
    (214, 39, 40),   // red
    (148, 103, 189), // purple
    (140, 86, 75),   // brown
    (227, 119, 194), // pink
    (127, 127, 127), // gray
    (188, 189, 34),  // olive
    (23, 190, 207),  // cyan
    (255, 187, 120), // light orange
    (152, 223, 138), // light green
];

/// The color for cluster `id`.
pub fn color(id: usize) -> (u8, u8, u8) {
    let (r, g, b) = BASE[id % BASE.len()];
    let round = (id / BASE.len()) as u32;
    if round == 0 {
        (r, g, b)
    } else {
        // Darken by ~20% per cycle, saturating.
        let f = 0.8f64.powi(round.min(8) as i32);
        let scale = |v: u8| ((v as f64) * f) as u8;
        (scale(r), scale(g), scale(b))
    }
}

/// CSS hex form (`#rrggbb`) of [`color`].
pub fn css(id: usize) -> String {
    let (r, g, b) = color(id);
    format!("#{r:02x}{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_twelve_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..12 {
            assert!(seen.insert(color(i)), "palette collision at {i}");
        }
    }

    #[test]
    fn cycling_darkens() {
        let (r0, ..) = color(0);
        let (r12, ..) = color(12);
        let (r24, ..) = color(24);
        assert!(r12 < r0);
        assert!(r24 < r12);
    }

    #[test]
    fn css_format() {
        assert_eq!(css(0), "#1f77b4");
        assert!(css(3).starts_with('#'));
        assert_eq!(css(5).len(), 7);
    }

    #[test]
    fn deep_cycles_do_not_panic() {
        let _ = color(12 * 200 + 3);
    }
}
