//! SVG scatter-plot rendering of a 2D clustering.

use crate::{point_color, ViewBox};
use dbscan_core::Clustering;
use dbscan_geom::Point;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders `points` colored by `clustering` into an SVG string.
///
/// `radius` is the marker radius in pixels. Points are drawn noise-first so
/// cluster structure stays visible on top of the gray background scatter.
pub fn render_clusters(
    points: &[Point<2>],
    clustering: &Clustering,
    width: u32,
    height: u32,
    radius: f64,
) -> String {
    assert_eq!(points.len(), clustering.len(), "clustering/point mismatch");
    let mut out = String::with_capacity(64 * points.len() + 256);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    if let Some(vb) = ViewBox::fit(points, width, height) {
        let mut order: Vec<usize> = (0..points.len()).collect();
        // Noise first (drawn underneath).
        order.sort_by_key(|&i| !clustering.assignments[i].is_noise());
        for i in order {
            let (x, y) = vb.map(&points[i]);
            let (r, g, b) = point_color(clustering, i);
            let _ = write!(
                out,
                r##"<circle cx="{x:.1}" cy="{y:.1}" r="{radius}" fill="#{r:02x}{g:02x}{b:02x}"/>"##
            );
        }
    }
    out.push_str("</svg>");
    out
}

/// Renders an uncolored scatter (the raw-dataset view of Figure 8).
pub fn render_points(points: &[Point<2>], width: u32, height: u32, radius: f64) -> String {
    let mut out = String::with_capacity(48 * points.len() + 256);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    if let Some(vb) = ViewBox::fit(points, width, height) {
        for p in points {
            let (x, y) = vb.map(p);
            let _ = write!(
                out,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="{radius}" fill="black"/>"#
            );
        }
    }
    out.push_str("</svg>");
    out
}

/// Renders straight to a file.
pub fn write_clusters(
    path: &Path,
    points: &[Point<2>],
    clustering: &Clustering,
    width: u32,
    height: u32,
    radius: f64,
) -> io::Result<()> {
    std::fs::write(
        path,
        render_clusters(points, clustering, width, height, radius),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_core::Assignment;
    use dbscan_geom::point::p2;

    fn tiny_clustering() -> (Vec<Point<2>>, Clustering) {
        let pts = vec![p2(0.0, 0.0), p2(1.0, 1.0), p2(2.0, 0.0)];
        let c = Clustering {
            assignments: vec![
                Assignment::Core(0),
                Assignment::Border(vec![0]),
                Assignment::Noise,
            ],
            num_clusters: 1,
        };
        (pts, c)
    }

    #[test]
    fn svg_structure() {
        let (pts, c) = tiny_clustering();
        let svg = render_clusters(&pts, &c, 200, 100, 2.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3);
        // Noise color present.
        assert!(svg.contains("#c8c8c8"));
    }

    #[test]
    fn empty_clustering_renders_blank_canvas() {
        let svg = render_clusters(&[], &Clustering::empty(), 100, 100, 2.0);
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "clustering/point mismatch")]
    fn mismatched_lengths_rejected() {
        let (pts, c) = tiny_clustering();
        let _ = render_clusters(&pts[..2], &c, 100, 100, 2.0);
    }

    #[test]
    fn file_roundtrip() {
        let (pts, c) = tiny_clustering();
        let path = std::env::temp_dir().join(format!("viz-{}.svg", std::process::id()));
        write_clusters(&path, &pts, &c, 100, 100, 1.5).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("svg"));
        std::fs::remove_file(&path).ok();
    }
}
