//! Raster rendering of a 2D clustering to binary PPM (P6) — viewable with any
//! image tool, no dependencies.

use crate::{point_color, ViewBox};
use dbscan_core::Clustering;
use dbscan_geom::Point;
use std::io::{self, Write as _};
use std::path::Path;

/// An RGB raster image.
pub struct Image {
    width: u32,
    height: u32,
    pixels: Vec<u8>, // RGB triplets, row-major
}

impl Image {
    /// A white canvas.
    pub fn new(width: u32, height: u32) -> Image {
        Image {
            width,
            height,
            pixels: vec![255; (width * height * 3) as usize],
        }
    }

    /// Sets one pixel (no-op out of bounds).
    pub fn set(&mut self, x: i64, y: i64, rgb: (u8, u8, u8)) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let idx = ((y as u32 * self.width + x as u32) * 3) as usize;
        self.pixels[idx] = rgb.0;
        self.pixels[idx + 1] = rgb.1;
        self.pixels[idx + 2] = rgb.2;
    }

    /// Reads one pixel (`None` out of bounds).
    pub fn get(&self, x: i64, y: i64) -> Option<(u8, u8, u8)> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return None;
        }
        let idx = ((y as u32 * self.width + x as u32) * 3) as usize;
        Some((self.pixels[idx], self.pixels[idx + 1], self.pixels[idx + 2]))
    }

    /// Draws a filled disc.
    pub fn disc(&mut self, cx: f64, cy: f64, r: f64, rgb: (u8, u8, u8)) {
        let r_ceil = r.ceil() as i64;
        let (icx, icy) = (cx.round() as i64, cy.round() as i64);
        for dy in -r_ceil..=r_ceil {
            for dx in -r_ceil..=r_ceil {
                if (dx * dx + dy * dy) as f64 <= r * r {
                    self.set(icx + dx, icy + dy, rgb);
                }
            }
        }
    }

    /// Serializes as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() + 32);
        let _ = write!(out, "P6\n{} {}\n255\n", self.width, self.height);
        out.extend_from_slice(&self.pixels);
        out
    }
}

/// Renders `points` colored by `clustering` and writes a P6 PPM file.
pub fn render_clusters(
    points: &[Point<2>],
    clustering: &Clustering,
    width: u32,
    height: u32,
    radius: f64,
) -> Image {
    assert_eq!(points.len(), clustering.len(), "clustering/point mismatch");
    let mut img = Image::new(width, height);
    if let Some(vb) = ViewBox::fit(points, width, height) {
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by_key(|&i| !clustering.assignments[i].is_noise());
        for i in order {
            let (x, y) = vb.map(&points[i]);
            img.disc(x, y, radius, point_color(clustering, i));
        }
    }
    img
}

/// Renders straight to a file.
pub fn write_clusters(
    path: &Path,
    points: &[Point<2>],
    clustering: &Clustering,
    width: u32,
    height: u32,
    radius: f64,
) -> io::Result<()> {
    std::fs::write(
        path,
        render_clusters(points, clustering, width, height, radius).to_ppm(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_core::Assignment;
    use dbscan_geom::point::p2;

    #[test]
    fn canvas_starts_white() {
        let img = Image::new(4, 4);
        assert_eq!(img.get(0, 0), Some((255, 255, 255)));
        assert_eq!(img.get(3, 3), Some((255, 255, 255)));
        assert_eq!(img.get(4, 0), None);
    }

    #[test]
    fn set_and_get() {
        let mut img = Image::new(4, 4);
        img.set(2, 1, (10, 20, 30));
        assert_eq!(img.get(2, 1), Some((10, 20, 30)));
        img.set(-1, 0, (1, 1, 1)); // out-of-bounds writes are ignored
        img.set(0, 99, (1, 1, 1));
    }

    #[test]
    fn disc_covers_center_and_respects_radius() {
        let mut img = Image::new(11, 11);
        img.disc(5.0, 5.0, 2.0, (0, 0, 0));
        assert_eq!(img.get(5, 5), Some((0, 0, 0)));
        assert_eq!(img.get(5, 7), Some((0, 0, 0)));
        assert_eq!(img.get(5, 8), Some((255, 255, 255)));
        assert_eq!(img.get(8, 8), Some((255, 255, 255)));
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    fn clustering_render_paints_points() {
        let pts = vec![p2(0.0, 0.0), p2(10.0, 10.0)];
        let c = Clustering {
            assignments: vec![Assignment::Core(0), Assignment::Core(1)],
            num_clusters: 2,
        };
        let img = render_clusters(&pts, &c, 50, 50, 2.0);
        // Some non-white pixel must exist.
        let any_colored = (0..50).any(|y| (0..50).any(|x| img.get(x, y) != Some((255, 255, 255))));
        assert!(any_colored);
    }
}
